#include "tuning/checkpoint.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/json_writer.hpp"
#include "common/logging.hpp"

namespace glimpse::tuning {

namespace {

constexpr const char* kMagic = "glimpse_checkpoint_v1";

}  // namespace

std::string checkpoint_word(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (std::isspace(static_cast<unsigned char>(c))) c = '_';
  return out.empty() ? std::string("-") : out;
}

namespace {

void write_trial(TextWriter& w, const TrialRecord& t) {
  write_config(w, t.config);
  write_result(w, t.result);
  w.scalar_u(t.step);
  w.scalar(t.elapsed_s);
}

TrialRecord read_trial(TextReader& r) {
  TrialRecord t;
  t.config = read_config(r);
  t.result = read_result(r);
  t.step = r.scalar_u();
  t.elapsed_s = r.scalar();
  return t;
}

}  // namespace

std::string journal_path(const std::string& checkpoint_path) {
  return checkpoint_path + ".journal.jsonl";
}

void save_checkpoint(const std::string& path, const SessionCheckpoint& state,
                     const Tuner& tuner, const gpusim::Measurer& measurer) {
  if (!tuner.checkpointable())
    throw std::runtime_error("save_checkpoint: tuner '" + tuner.name() +
                             "' is not checkpointable");
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os.good())
      throw std::runtime_error("save_checkpoint: cannot open " + tmp);
    TextWriter w(os);
    w.tag(kMagic);
    w.text(checkpoint_word(tuner.name()));
    w.text(checkpoint_word(state.task_name));
    w.text(checkpoint_word(state.hw_name));
    w.scalar_u(state.step);
    w.scalar(state.session_start_s);
    w.scalar(state.plateau_best);
    w.scalar_u(state.trials_since_improvement);
    w.scalar_u(state.trace.trials.size());
    for (const TrialRecord& t : state.trace.trials) write_trial(w, t);
    measurer.save_state(w);
    tuner.save(w);
    w.tag("end");
    os.flush();
    if (!os.good())
      throw std::runtime_error("save_checkpoint: write failed for " + tmp);
  }
  // POSIX rename is atomic: readers see either the old or the new snapshot,
  // never a torn one.
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("save_checkpoint: rename to " + path + " failed");
}

void load_checkpoint(const std::string& path, SessionCheckpoint& state, Tuner& tuner,
                     gpusim::Measurer& measurer) {
  std::ifstream is(path);
  if (!is.good()) throw std::runtime_error("load_checkpoint: cannot open " + path);
  TextReader r(is);
  r.expect(kMagic);
  std::string tuner_name = r.text();
  if (tuner_name != checkpoint_word(tuner.name()))
    throw std::runtime_error("load_checkpoint: snapshot is for tuner '" + tuner_name +
                             "', got '" + tuner.name() + "'");
  state.tuner_name = tuner_name;
  state.task_name = r.text();
  state.hw_name = r.text();
  state.step = r.scalar_u();
  state.session_start_s = r.scalar();
  state.plateau_best = r.scalar();
  state.trials_since_improvement = r.scalar_u();
  std::size_t n = r.scalar_u();
  state.trace.trials.clear();
  for (std::size_t i = 0; i < n; ++i) state.trace.trials.push_back(read_trial(r));
  measurer.load_state(r);
  tuner.load(r);
  r.expect("end");
}

void append_journal(const std::string& path, const Trace& trace,
                    std::size_t from_trial) {
  std::ofstream os(path, std::ios::app);
  if (!os.good()) {
    LOG_WARN << "append_journal: cannot open " << path;
    return;  // the journal is advisory; the snapshot is the source of truth
  }
  for (std::size_t i = from_trial; i < trace.trials.size(); ++i) {
    const TrialRecord& t = trace.trials[i];
    JsonWriter w(os, /*indent=*/0);
    w.begin_object();
    w.kv("step", static_cast<std::uint64_t>(t.step));
    w.key("config");
    w.begin_array();
    for (std::uint32_t v : t.config) w.value(static_cast<std::uint64_t>(v));
    w.end_array();
    w.kv("valid", t.result.valid);
    w.kv("error", gpusim::to_string(t.result.error));
    w.kv("attempts", static_cast<std::int64_t>(t.result.attempts));
    w.kv("gflops", t.result.gflops);
    w.kv("latency_s", t.result.latency_s);
    w.kv("cost_s", t.result.cost_s);
    w.kv("elapsed_s", t.elapsed_s);
    w.end_object();
    os << '\n';
  }
}

}  // namespace glimpse::tuning
