// Parallel simulated annealing over a config space, maximizing an arbitrary
// score function (usually a learned cost model's prediction).
//
// This mirrors AutoTVM's model-guided proposal step: a batch of Markov
// chains walks the knob space by single-knob mutations; the best-scoring
// distinct points seen anywhere become measurement candidates.
//
// Chains advance in lockstep: each step, every chain proposes one neighbor
// (serially, from its own forked RNG substream), then all proposals are
// scored in a single batch. The batch is where the parallelism lives — a
// BatchScoreFn can fan one packed surrogate predict across the thread pool
// instead of paying one dispatch per config. Per-chain RNG streams and
// accept/reject bookkeeping are untouched by batching, so trajectories are
// bit-identical to scoring chains one by one, at any thread count. Score
// functions must be deterministic; batch score functions must be pure
// (results depend only on the configs).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "searchspace/config_space.hpp"

namespace glimpse::tuning {

using ScoreFn = std::function<double(const searchspace::Config&)>;
/// Scores a batch of configs; must return one score per input, in order.
using BatchScoreFn =
    std::function<std::vector<double>(const std::vector<searchspace::Config>&)>;

struct SaOptions {
  int num_chains = 48;
  int num_steps = 96;
  double temp_start = 1.0;
  double temp_end = 0.02;  ///< temperature decays linearly to this
};

struct SaResult {
  /// Distinct configs ordered by descending score (up to `top_k`).
  std::vector<searchspace::Config> configs;
  std::vector<double> scores;
  long long evaluations = 0;  ///< score-function calls made
};

/// Run annealing and return the `top_k` best distinct configurations.
/// `init` seeds some chains (remaining chains start at random configs).
/// Each lockstep round issues one BatchScoreFn call covering every chain.
SaResult simulated_annealing(const searchspace::ConfigSpace& space,
                             const BatchScoreFn& score_batch, std::size_t top_k,
                             Rng& rng, SaOptions options = {},
                             std::vector<searchspace::Config> init = {});

/// Convenience overload for per-config scorers: adapts `score` into a batch
/// function that fans the batch across the thread pool. Produces the same
/// result as the batched overload with an equivalent BatchScoreFn.
SaResult simulated_annealing(const searchspace::ConfigSpace& space, const ScoreFn& score,
                             std::size_t top_k, Rng& rng, SaOptions options = {},
                             std::vector<searchspace::Config> init = {});

}  // namespace glimpse::tuning
