// Parallel simulated annealing over a config space, maximizing an arbitrary
// score function (usually a learned cost model's prediction).
//
// This mirrors AutoTVM's model-guided proposal step: a batch of Markov
// chains walks the knob space by single-knob mutations; the best-scoring
// distinct points seen anywhere become measurement candidates.
//
// Chains are independent and run on the shared thread pool (one forked RNG
// substream per chain), so results are identical at any thread count; the
// score function must be safe to call concurrently.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "searchspace/config_space.hpp"

namespace glimpse::tuning {

using ScoreFn = std::function<double(const searchspace::Config&)>;

struct SaOptions {
  int num_chains = 48;
  int num_steps = 96;
  double temp_start = 1.0;
  double temp_end = 0.02;  ///< temperature decays linearly to this
};

struct SaResult {
  /// Distinct configs ordered by descending score (up to `top_k`).
  std::vector<searchspace::Config> configs;
  std::vector<double> scores;
  long long evaluations = 0;  ///< score-function calls made
};

/// Run annealing and return the `top_k` best distinct configurations.
/// `init` seeds some chains (remaining chains start at random configs).
SaResult simulated_annealing(const searchspace::ConfigSpace& space, const ScoreFn& score,
                             std::size_t top_k, Rng& rng, SaOptions options = {},
                             std::vector<searchspace::Config> init = {});

}  // namespace glimpse::tuning
