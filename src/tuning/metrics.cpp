#include "tuning/metrics.hpp"

namespace glimpse::tuning {

std::optional<std::size_t> steps_to_reach(const Trace& trace, double gflops_threshold) {
  double best = 0.0;
  for (std::size_t i = 0; i < trace.trials.size(); ++i) {
    const auto& t = trace.trials[i];
    if (t.result.valid) best = std::max(best, t.result.gflops);
    if (best >= gflops_threshold) return i + 1;
  }
  return std::nullopt;
}

std::optional<double> time_to_reach(const Trace& trace, double gflops_threshold) {
  double best = 0.0;
  for (const auto& t : trace.trials) {
    if (t.result.valid) best = std::max(best, t.result.gflops);
    if (best >= gflops_threshold) return t.elapsed_s;
  }
  return std::nullopt;
}

double search_reduction_pct(double baseline_search_s, double search_s) {
  return (1.0 - search_s / baseline_search_s) * 100.0;
}

double inference_reduction_pct(double baseline_latency_s, double latency_s) {
  return (1.0 - latency_s / baseline_latency_s) * 100.0;
}

double hyper_volume(double baseline_search_s, double baseline_latency_s,
                    double search_s, double latency_s) {
  double sr = search_reduction_pct(baseline_search_s, search_s) / 100.0;
  double ir = inference_reduction_pct(baseline_latency_s, latency_s) / 100.0;
  return sr * ir * 100.0;
}

}  // namespace glimpse::tuning
