#include "service/session_manager.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "baselines/autotvm.hpp"
#include "baselines/chameleon.hpp"
#include "baselines/random_tuner.hpp"
#include "common/logging.hpp"
#include "common/telemetry/metrics.hpp"
#include "common/telemetry/span.hpp"
#include "common/telemetry/trace_context.hpp"
#include "gpusim/measurer.hpp"
#include "hwspec/database.hpp"
#include "searchspace/models.hpp"
#include "tuning/checkpoint.hpp"
#include "tuning/result_cache.hpp"
#include "tuning/scheduler.hpp"
#include "tuning/warmstart.hpp"

namespace glimpse::service {

namespace fs = std::filesystem;

struct SessionManager::JobRecord {
  std::uint64_t id = 0;
  std::string client;
  std::int64_t priority = 0;
  JobSpec spec;

  std::string state = "queued";  ///< queued | running | done | cancelled | failed
  bool cancel_requested = false;
  bool settled() const {
    return state == "done" || state == "cancelled" || state == "failed";
  }

  // Scheduler runtime. Owned here; the scheduler's ScheduledJob borrows raw
  // pointers, so these stay alive until the manager dies (the scheduler
  // never touches a finished job again, but we don't lean on that).
  bool admitted = false;
  std::size_t sched_index = 0;
  std::unique_ptr<tuning::Tuner> tuner;
  std::unique_ptr<gpusim::SimMeasurer> measurer;
  const searchspace::Task* task = nullptr;
  const hwspec::GpuSpec* hw = nullptr;
  tuning::SessionOptions sess;

  JobSummary summary;
  std::size_t scan_pos = 0;  ///< trace trials already folded into summary
  /// Bumped on every externally visible progress change (admission, new
  /// trials, settlement); subscribe() streams a status per bump.
  std::uint64_t update_version = 0;

  // Distributed-trace identity (tentpole, DESIGN.md §13). trace_ctx.span_id
  // is the job's root span; trace_parent is the client request span it nests
  // under. Telemetry only — never read by scheduling or tuning decisions.
  telemetry::TraceContext trace_ctx;
  std::uint64_t trace_parent = 0;
  std::uint64_t enqueue_ns = 0;  ///< queue entry (0 = not timed)
  std::uint64_t admit_ns = 0;    ///< scheduler admission (0 = never admitted)
};

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(std::move(options)), queue_(options_.queue) {
  GLIMPSE_CHECK(options_.slots >= 1);
  if (!options_.cache_shared_dir.empty()) {
    GLIMPSE_CHECK(!options_.shard_name.empty());
    std::error_code ec;
    fs::create_directories(options_.cache_shared_dir, ec);
    tuning::ResultCacheOptions copts;
    copts.path =
        options_.cache_shared_dir + "/tier-" + options_.shard_name + ".jsonl";
    copts.shared_dir = options_.cache_shared_dir;
    cache_ = std::make_unique<tuning::ResultCache>(copts);
  } else if (!options_.cache.empty()) {
    tuning::ResultCacheOptions copts;
    if (options_.cache != "mem") copts.path = options_.cache;
    cache_ = std::make_unique<tuning::ResultCache>(copts);
  }
  if (options_.warmstart) {
    tuning::WarmStartOptions wopts;
    wopts.shared_dir = options_.cache_shared_dir;
    if (!options_.warmstart_predictor.empty()) {
      try {
        predictor_ = std::make_unique<tuning::ConfigPredictor>(
            tuning::ConfigPredictor::load_file(options_.warmstart_predictor));
        if (!predictor_->fitted())
          throw std::runtime_error("predictor file holds an unfitted model");
        wopts.predictor = predictor_.get();
      } catch (const std::exception& e) {
        LOG_WARN << "warm-start predictor " << options_.warmstart_predictor
                 << " unusable (" << e.what() << "); continuing without it";
        predictor_.reset();
      }
    }
    advisor_ = std::make_unique<tuning::WarmStartAdvisor>(std::move(wopts));
  }
  scheduler_ = std::make_unique<tuning::Scheduler>(
      tuning::SchedulerOptions{options_.slots});
  recover_spool();
  worker_ = std::thread(&SessionManager::worker_loop, this);
}

SessionManager::~SessionManager() { stop(); }

void SessionManager::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  worker_cv_.notify_all();
  settled_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::uint64_t SessionManager::recovered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resumed_;
}

bool SessionManager::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

std::string SessionManager::spool_file(std::uint64_t id, const char* suffix) const {
  char name[64];
  std::snprintf(name, sizeof name, "job-%08llu",
                static_cast<unsigned long long>(id));
  return options_.spool_dir + "/" + name + suffix;
}

namespace {

bool known_tuner(const std::string& name) {
  return name == "random" || name == "autotvm" || name == "chameleon";
}

searchspace::Model model_by_name(const std::string& name) {
  if (name == "alexnet") return searchspace::alexnet();
  if (name == "resnet18") return searchspace::resnet18();
  if (name == "vgg16") return searchspace::vgg16();
  if (name == "transformer") return searchspace::transformer_block();
  if (name == "mobilenet_edge") return searchspace::mobilenet_edge();
  throw std::invalid_argument("unknown model '" + name + "'");
}

/// Read one whole line from a small spool file. False when unreadable.
bool read_line(const std::string& path, std::string& out) {
  std::ifstream is(path);
  if (!is.good()) return false;
  return static_cast<bool>(std::getline(is, out));
}

/// Atomic single-line file write (tmp + rename): readers and crash
/// recovery never see a torn spool entry.
void write_line_atomic(const std::string& path, const std::string& line) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os.good()) throw std::runtime_error("cannot write " + tmp);
    os << line << '\n';
    os.flush();
    if (!os.good()) throw std::runtime_error("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("rename failed: " + path);
}

}  // namespace

const searchspace::TaskSet& SessionManager::task_set(const std::string& model) {
  std::lock_guard<std::mutex> lock(task_sets_mu_);
  auto it = task_sets_.find(model);
  if (it == task_sets_.end()) {
    it = task_sets_
             .emplace(model, std::make_unique<searchspace::TaskSet>(
                                 model_by_name(model)))
             .first;
  }
  return *it->second;
}

void SessionManager::build_runtime(JobRecord& rec) {
  const searchspace::TaskSet& ts = task_set(rec.spec.model);
  if (rec.spec.task_index >= ts.num_tasks())
    throw std::invalid_argument("task index out of range");
  rec.task = &ts.task(rec.spec.task_index);
  rec.hw = hwspec::find_gpu(rec.spec.gpu);
  if (rec.hw == nullptr)
    throw std::invalid_argument(hwspec::unknown_gpu_message(rec.spec.gpu));

  if (rec.spec.tuner == "random") {
    rec.tuner = std::make_unique<baselines::RandomTuner>(*rec.task, *rec.hw,
                                                         rec.spec.seed);
  } else if (rec.spec.tuner == "autotvm") {
    rec.tuner = std::make_unique<baselines::AutoTvmTuner>(*rec.task, *rec.hw,
                                                          rec.spec.seed);
  } else if (rec.spec.tuner == "chameleon") {
    rec.tuner = std::make_unique<baselines::ChameleonTuner>(*rec.task, *rec.hw,
                                                            rec.spec.seed);
  } else {
    throw std::invalid_argument("unknown tuner '" + rec.spec.tuner + "'");
  }
  rec.measurer = std::make_unique<gpusim::SimMeasurer>();

  tuning::SessionOptions sess;
  sess.max_trials = rec.spec.max_trials;
  sess.batch_size = rec.spec.batch_size;
  sess.plateau_trials = rec.spec.plateau_trials;
  if (rec.spec.time_budget_s > 0.0) sess.time_budget_s = rec.spec.time_budget_s;
  sess.seed = rec.spec.seed;
  sess.result_cache = cache_.get();
  sess.trace = rec.trace_ctx;
  sess.trace_job_id = rec.id;
  if (!options_.spool_dir.empty()) {
    sess.checkpoint_path = spool_file(rec.id, ".ckpt");
    sess.checkpoint_every_batches = options_.checkpoint_every_batches;
    // Recovery sets resume_from before the record reaches the scheduler;
    // keep whatever it decided.
    sess.resume_from = rec.sess.resume_from;
  }
  if (advisor_ && rec.spec.warmstart && rec.spec.tuner != "random") {
    // Seeds reach the tuner via Scheduler::add_job *before* any checkpoint
    // restore, so a resumed job keeps its serialized warm state (part of
    // the recorded search trajectory) instead of today's advice.
    tuning::WarmStart ws = advisor_->advise(*rec.task, *rec.hw);
    sess.warm_configs = std::move(ws.configs);
    sess.warm_scores = std::move(ws.scores);
  }
  rec.sess = std::move(sess);
}

Response SessionManager::submit(const std::string& client, std::int64_t priority,
                                const JobSpec& spec) {
  // Validate the spec outside the lock: all checks are read-only lookups.
  if (!known_tuner(spec.tuner)) {
    if (spec.tuner == "glimpse" || spec.tuner == "dgp")
      return error_response("tuner '" + spec.tuner +
                            "' needs pretrained artifacts the daemon does not "
                            "hold; use random, autotvm, or chameleon");
    return error_response("unknown tuner '" + spec.tuner + "'");
  }
  if (hwspec::find_gpu(spec.gpu) == nullptr)
    return error_response(hwspec::unknown_gpu_message(spec.gpu));
  std::size_t num_tasks = 0;
  try {
    num_tasks = task_set(spec.model).num_tasks();
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
  if (spec.task_index >= num_tasks)
    return error_response("task index out of range (model has " +
                          std::to_string(num_tasks) + " tasks)");

  // Capture the connection thread's ambient trace context (set by the
  // server from the request's traceparent) before taking the lock; the
  // worker thread that later runs the job has no ambient context of its own.
  const telemetry::TraceContext inbound =
      telemetry::tracing_enabled() ? telemetry::current_trace_context()
                                   : telemetry::TraceContext{};

  std::lock_guard<std::mutex> lock(mu_);
  Response r;
  if (draining_ || stop_) {
    ++rejected_;
    r.type = ResponseType::kRejected;
    r.reason = "draining";
    r.retry_after_s = options_.queue.retry_after_s;
    return r;
  }
  if (options_.quota_gpu_s > 0.0) {
    auto spent = quota_spent_.find(client);
    if (spent != quota_spent_.end() && spent->second >= options_.quota_gpu_s) {
      // Queue slots bound concurrency; this bounds total simulated GPU time
      // a client can burn. Quotas never replenish within a daemon lifetime —
      // spent time only grows — so a retry hint would send clients into an
      // infinite retry loop. retry_after_s = 0 means "terminal: don't
      // retry"; only an operator restarting the daemon or raising the quota
      // can clear it.
      ++rejected_;
      ++quota_rejections_;
      r.type = ResponseType::kRejected;
      r.reason = "quota_exhausted";
      r.retry_after_s = 0.0;
      return r;
    }
  }
  const std::uint64_t id = next_id_;
  Admission adm = queue_.push(QueuedJob{id, client, priority, spec});
  if (!adm.accepted) {
    ++rejected_;
    r.type = ResponseType::kRejected;
    r.reason = adm.reason;
    r.retry_after_s = adm.retry_after_s;
    return r;
  }
  ++next_id_;
  if (priority > 0) ++admitted_high_;
  else if (priority < 0) ++admitted_low_;
  else ++admitted_normal_;
  auto rec = std::make_unique<JobRecord>();
  rec->id = id;
  rec->client = client;
  rec->priority = priority;
  rec->spec = spec;
  rec->summary.job_id = id;
  rec->summary.client = client;
  rec->summary.state = "queued";
  if (inbound.valid()) {
    // The job gets its own root span id under the client's request span;
    // everything the job does (queue wait, rounds, measurements) nests
    // beneath it, across processes and across daemon restarts.
    rec->trace_parent = inbound.span_id;
    rec->trace_ctx = inbound;
    rec->trace_ctx.span_id = telemetry::next_span_id();
  }
  if (telemetry::tracing_enabled() || telemetry::metrics_enabled())
    rec->enqueue_ns = telemetry::now_ns();
  if (!options_.spool_dir.empty()) {
    try {
      persist_spec(*rec);
    } catch (const std::exception& e) {
      queue_.erase(id);
      ++rejected_;
      return error_response(std::string("spool write failed: ") + e.what());
    }
  }
  records_.emplace(id, std::move(rec));
  ++submitted_;
  worker_cv_.notify_all();
  r.type = ResponseType::kAccepted;
  r.job_id = id;
  return r;
}

Response SessionManager::status(std::uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(job_id);
  if (it == records_.end()) return error_response("unknown job_id");
  Response r;
  r.type = ResponseType::kStatus;
  r.summary = it->second->summary;
  return r;
}

Response SessionManager::result(std::uint64_t job_id, bool wait) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = records_.find(job_id);
  if (it == records_.end()) return error_response("unknown job_id");
  JobRecord* rec = it->second.get();
  if (!rec->settled() && wait) {
    settled_cv_.wait(lock, [&] { return stop_ || rec->settled(); });
    if (!rec->settled()) return error_response("daemon stopping");
  }
  Response r;
  r.type = rec->settled() ? ResponseType::kResult : ResponseType::kStatus;
  r.summary = rec->summary;
  return r;
}

bool SessionManager::handle(const Request& req, const Emit& emit) {
  switch (req.type) {
    case RequestType::kSubmit:
      return emit(submit(req.client, req.priority, req.job));
    case RequestType::kStatus: return emit(status(req.job_id));
    case RequestType::kResult: return emit(result(req.job_id, req.wait));
    case RequestType::kCancel: return emit(cancel(req.job_id));
    case RequestType::kSubscribe: return subscribe(req.job_id, emit);
    case RequestType::kStats: return emit(stats());
    case RequestType::kDrain: return emit(drain());
    default:
      // kPing / kShutdown are the Server's; anything else reaching here is
      // a dispatch bug upstream, answered without trusting it.
      return emit(error_response("unsupported request type"));
  }
}

bool SessionManager::subscribe(std::uint64_t job_id, const Emit& emit) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = records_.find(job_id);
  if (it == records_.end()) {
    lock.unlock();
    return emit(error_response("unknown job_id"));
  }
  JobRecord* rec = it->second.get();
  // Records are never erased while the manager lives, so `rec` stays valid
  // across the unlocked emit calls below.
  std::uint64_t seen = std::numeric_limits<std::uint64_t>::max();
  while (true) {
    settled_cv_.wait(lock, [&] {
      return stop_ || rec->settled() || rec->update_version != seen;
    });
    if (stop_ && !rec->settled()) {
      lock.unlock();
      return emit(error_response("daemon stopping"));
    }
    seen = rec->update_version;
    Response r;
    r.type = rec->settled() ? ResponseType::kResult : ResponseType::kStatus;
    r.summary = rec->summary;
    const bool final_push = rec->settled();
    lock.unlock();
    if (!emit(r)) return false;  // connection gone mid-stream
    if (final_push) return true;
    lock.lock();
  }
}

Response SessionManager::cancel(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(job_id);
  if (it == records_.end()) return error_response("unknown job_id");
  JobRecord& rec = *it->second;
  if (rec.state == "queued") {
    queue_.erase(job_id);
    finalize_locked(rec, "cancelled", "");
  } else if (rec.state == "running") {
    rec.cancel_requested = true;
    worker_cv_.notify_all();
  }
  Response r;
  r.type = ResponseType::kOk;
  return r;
}

Response SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Response r;
  r.type = ResponseType::kStats;
  ServiceStats& s = r.stats;
  s.queue_depth = queue_.depth();
  for (const auto& [id, rec] : records_)
    if (rec->state == "running") ++s.running;
  s.jobs_inflight = s.queue_depth + s.running;
  s.admitted_prio_high = admitted_high_;
  s.admitted_prio_normal = admitted_normal_;
  s.admitted_prio_low = admitted_low_;
  s.submitted = submitted_;
  s.completed = completed_;
  s.cancelled = cancelled_;
  s.failed = failed_;
  s.rejected = rejected_;
  s.quota_rejections = quota_rejections_;
  s.resumed = resumed_;
  s.slots = options_.slots;
  s.cache_enabled = cache_ != nullptr;
  if (cache_) {
    tuning::ResultCacheStats cs = cache_->stats();
    s.cache_hits = cs.hits;
    s.cache_inserts = cs.inserts;
  }
  // Cross-job in-round dedup is counted by the scheduler's telemetry
  // counter; it stays 0 unless metrics collection is enabled.
  if (telemetry::metrics_enabled()) {
    s.shared_hits = static_cast<std::uint64_t>(
        telemetry::MetricsRegistry::global().counter("scheduler.shared_hits").value());
  }
  s.draining = draining_;
  return r;
}

Response SessionManager::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  worker_cv_.notify_all();
  settled_cv_.wait(lock, [&] {
    if (stop_) return true;
    for (const auto& [id, rec] : records_)
      if (!rec->settled()) return false;
    return queue_.empty();
  });
  Response r;
  r.type = ResponseType::kOk;
  return r;
}

void SessionManager::persist_spec(const JobRecord& rec) {
  write_line_atomic(
      spool_file(rec.id, ".spec.json"),
      encode_spool_record({rec.id, rec.client, rec.priority, rec.spec,
                           rec.trace_ctx.valid()
                               ? telemetry::to_traceparent(rec.trace_ctx)
                               : std::string()}));
}

bool SessionManager::persist_result(const JobRecord& rec) {
  if (options_.spool_dir.empty()) return true;
  try {
    write_line_atomic(spool_file(rec.id, ".result.json"),
                      encode_job_summary(rec.summary));
  } catch (const std::exception& e) {
    LOG_WARN << "spool result write failed for job " << rec.id << ": "
             << e.what();
    return false;
  }
  return true;
}

void SessionManager::finalize_locked(JobRecord& rec, std::string state,
                                     std::string error) {
  if (telemetry::tracing_enabled() && rec.trace_ctx.valid() &&
      rec.enqueue_ns != 0) {
    // The job's root span: covers admission through settlement (or the whole
    // queued life for jobs cancelled before running). Its id is the one the
    // spool carries and every child span points at.
    const std::uint64_t t0 = rec.admit_ns != 0 ? rec.admit_ns : rec.enqueue_ns;
    const std::uint64_t now = telemetry::now_ns();
    telemetry::EventArgs args;
    args.job_id = rec.id;
    args.note = state == "done"        ? "done"
                : state == "cancelled" ? "cancelled"
                                       : "failed";
    telemetry::record_span_event("job.run", t0, now > t0 ? now - t0 : 0,
                                 rec.trace_ctx, rec.trace_parent, args);
  }
  rec.state = state;
  rec.summary.state = state;
  rec.summary.error = std::move(error);
  ++rec.update_version;
  if (state == "done") ++completed_;
  else if (state == "cancelled") ++cancelled_;
  else ++failed_;
  if (persist_result(rec) && !options_.spool_dir.empty()) {
    // The checkpoint (and its journal) is dead weight once the settled
    // summary is durable; keep it only when the result write failed, so a
    // restart can still recover the job from its last checkpoint.
    std::error_code ec;
    const std::string ckpt = spool_file(rec.id, ".ckpt");
    fs::remove(ckpt, ec);
    fs::remove(tuning::journal_path(ckpt), ec);
  }
  settled_cv_.notify_all();
}

void SessionManager::recover_spool() {
  if (options_.spool_dir.empty()) return;
  std::error_code ec;
  fs::create_directories(options_.spool_dir, ec);
  if (ec) throw std::runtime_error("cannot create spool dir " + options_.spool_dir);

  struct Found {
    std::uint64_t id = 0;
    SpoolRecord sr;
    bool settled = false;
    JobSummary done;
  };
  std::vector<Found> found;
  for (const auto& entry : fs::directory_iterator(options_.spool_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 14 || name.rfind("job-", 0) != 0) continue;
    if (name.size() < 10 || name.substr(name.size() - 10) != ".spec.json") continue;
    std::string line;
    Found f;
    std::string err;
    if (!read_line(entry.path().string(), line) ||
        !parse_spool_record(line, f.sr, err)) {
      LOG_WARN << "skipping unreadable spool spec " << name << ": " << err;
      continue;
    }
    f.id = f.sr.id;
    found.push_back(std::move(f));
  }
  // Directory order is unspecified; sort so recovered admission order (and
  // hence the queue) is deterministic.
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) { return a.id < b.id; });

  // Classify first: retention below needs the total settled count.
  std::size_t settled = 0;
  for (Found& f : found) {
    std::string line, err;
    if (!read_line(spool_file(f.id, ".result.json"), line)) continue;
    if (parse_job_summary_line(line, f.done, err)) {
      f.settled = true;
      ++settled;
    } else {
      LOG_WARN << "unreadable spool result for job " << f.id << ": " << err
               << "; re-running";
    }
  }
  // Garbage-collect the oldest settled entries past the retention cap —
  // without this, every restart reloads every job the daemon ever ran, and
  // both the spool directory and startup time grow without bound.
  std::size_t drop =
      (options_.spool_retain > 0 && settled > options_.spool_retain)
          ? settled - options_.spool_retain
          : 0;

  for (Found& f : found) {
    const std::uint64_t id = f.id;
    next_id_ = std::max(next_id_, id + 1);
    if (f.settled && drop > 0) {
      --drop;
      for (const char* suffix : {".spec.json", ".ckpt", ".result.json"})
        fs::remove(spool_file(id, suffix), ec);
      fs::remove(tuning::journal_path(spool_file(id, ".ckpt")), ec);
      continue;
    }
    auto rec = std::make_unique<JobRecord>();
    rec->id = id;
    rec->client = f.sr.client;
    rec->priority = f.sr.priority;
    rec->spec = f.sr.job;
    rec->summary.job_id = id;
    rec->summary.client = f.sr.client;

    if (f.settled) {
      // Settled before the previous daemon died: keep it queryable.
      rec->summary = std::move(f.done);
      rec->state = rec->summary.state;
      ++submitted_;
      if (rec->state == "done") ++completed_;
      else if (rec->state == "cancelled") ++cancelled_;
      else ++failed_;
      records_.emplace(id, std::move(rec));
      continue;
    }

    // Accepted but not settled: re-admit, resuming from the checkpoint
    // when one survives. `force` skips admission bounds — this job was
    // already accepted once and must not be re-rejected.
    const std::string ckpt = spool_file(id, ".ckpt");
    const bool have_ckpt = fs::exists(ckpt, ec);
    if (have_ckpt) rec->sess.resume_from = ckpt;
    rec->summary.state = "queued";
    if (!f.sr.traceparent.empty()) {
      // Re-join the submitting client's trace: the spooled traceparent names
      // the job's root span, so spans from the resumed run stitch under the
      // same trace id. The original request-span parent did not survive the
      // restart; the job root simply has no parent in the new segment.
      telemetry::parse_traceparent(f.sr.traceparent, rec->trace_ctx);
    }
    if (telemetry::tracing_enabled() || telemetry::metrics_enabled())
      rec->enqueue_ns = telemetry::now_ns();
    queue_.push(QueuedJob{id, rec->client, rec->priority, rec->spec},
                /*force=*/true);
    if (rec->priority > 0) ++admitted_high_;
    else if (rec->priority < 0) ++admitted_low_;
    else ++admitted_normal_;
    ++submitted_;
    ++resumed_;
    LOG_INFO << "recovered spooled job " << id
             << (have_ckpt ? " (resuming from checkpoint)" : " (restarting)");
    records_.emplace(id, std::move(rec));
  }
}

void SessionManager::admit_queued_locked() {
  QueuedJob qj;
  while (queue_.pop(qj)) {
    auto it = records_.find(qj.id);
    if (it == records_.end()) continue;  // cancelled between push and pop
    JobRecord& rec = *it->second;
    if (rec.settled()) continue;
    try {
      build_runtime(rec);
      try {
        rec.sched_index = scheduler_->add_job({rec.tuner.get(), rec.task,
                                               rec.hw, rec.measurer.get(),
                                               rec.sess});
      } catch (const std::exception& e) {
        if (rec.sess.resume_from.empty()) throw;
        // Corrupt checkpoint: rebuild fresh state and rerun from scratch —
        // determinism makes the rerun bit-identical to a resumed one.
        LOG_WARN << "job " << rec.id << ": checkpoint resume failed ("
                 << e.what() << "); restarting from scratch";
        rec.sess.resume_from.clear();
        build_runtime(rec);
        rec.sched_index = scheduler_->add_job({rec.tuner.get(), rec.task,
                                               rec.hw, rec.measurer.get(),
                                               rec.sess});
      }
    } catch (const std::exception& e) {
      finalize_locked(rec, "failed", e.what());
      continue;
    }
    rec.admitted = true;
    rec.state = "running";
    rec.summary.state = "running";
    ++rec.update_version;  // subscribers see queued -> running
    if (rec.enqueue_ns != 0) {
      rec.admit_ns = telemetry::now_ns();
      const std::uint64_t waited =
          rec.admit_ns > rec.enqueue_ns ? rec.admit_ns - rec.enqueue_ns : 0;
      if (telemetry::metrics_enabled())
        telemetry::MetricsRegistry::global()
            .histogram("stage.queue_wait_s")
            .record(static_cast<double>(waited) * 1e-9);
      if (telemetry::tracing_enabled() && rec.trace_ctx.valid()) {
        // The wait spans two threads (submit on a connection thread, admit
        // here on the worker), so it is recorded retroactively as a child
        // of the job's root span.
        telemetry::TraceContext ev = rec.trace_ctx;
        ev.span_id = telemetry::next_span_id();
        telemetry::EventArgs args;
        args.job_id = rec.id;
        telemetry::record_span_event("queue.wait", rec.enqueue_ns, waited, ev,
                                     rec.trace_ctx.span_id, args);
      }
    }
    if (rec.cancel_requested) scheduler_->cancel(rec.sched_index);
  }
}

void SessionManager::refresh_locked() {
  bool progressed = false;
  for (auto& [id, recp] : records_) {
    JobRecord& rec = *recp;
    if (rec.state != "running" || !rec.admitted) continue;
    const tuning::Trace& tr = scheduler_->trace(rec.sched_index);
    for (; rec.scan_pos < tr.trials.size(); ++rec.scan_pos) {
      const tuning::TrialRecord& t = tr.trials[rec.scan_pos];
      if (t.result.error != gpusim::MeasureError::kNone) ++rec.summary.faulted;
      if (t.result.valid && t.result.gflops > rec.summary.best_gflops) {
        rec.summary.best_gflops = t.result.gflops;
        rec.summary.best_config = t.config;
      }
    }
    if (rec.summary.trials != tr.trials.size()) {
      ++rec.update_version;  // new trials are visible progress
      progressed = true;
    }
    rec.summary.trials = tr.trials.size();
    // Quota accounting charges the client for the simulated time this
    // round added (the measurer's elapsed clock is monotone per job).
    const double prev_elapsed = rec.summary.elapsed_s;
    rec.summary.elapsed_s = rec.measurer->elapsed_seconds();
    if (options_.quota_gpu_s > 0.0 && rec.summary.elapsed_s > prev_elapsed)
      quota_spent_[rec.client] += rec.summary.elapsed_s - prev_elapsed;
    if (scheduler_->job_done(rec.sched_index)) {
      finalize_locked(rec,
                      scheduler_->job_cancelled(rec.sched_index) ? "cancelled"
                                                                 : "done",
                      "");
    }
  }
  if (progressed) settled_cv_.notify_all();  // wake subscribe() streams
}

void SessionManager::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    admit_queued_locked();
    for (auto& [id, rec] : records_)
      if (rec->state == "running" && rec->admitted && rec->cancel_requested)
        scheduler_->cancel(rec->sched_index);
    if (scheduler_->idle() && queue_.empty()) {
      worker_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      continue;
    }
    lock.unlock();
    bool threw = false;
    std::string what;
    try {
      // The round runs outside the lock: measurements fan out across the
      // thread pool and can take a while; status()/submit() must not stall.
      scheduler_->step_round();
    } catch (const std::exception& e) {
      threw = true;
      what = e.what();
    }
    // Pull peer shards' fresh cache entries between rounds (no-op without
    // a shared tier). Outside the lock: it reads tier files from disk.
    if (cache_) cache_->sync_peers();
    lock.lock();
    if (threw) {
      LOG_ERROR << "scheduler round failed: " << what;
      for (auto& [id, rec] : records_)
        if (rec->state == "running")
          finalize_locked(*rec, "failed", "scheduler round failed: " + what);
      // The failed jobs are still live inside the scheduler (finish() never
      // ran for them), so idle() would stay false and this loop would spin
      // re-running the failing round forever on a persistent error (e.g. a
      // full disk during checkpointing). Replace the scheduler outright:
      // queued jobs are re-admitted into the fresh one next iteration.
      scheduler_ = std::make_unique<tuning::Scheduler>(
          tuning::SchedulerOptions{options_.slots});
      continue;
    }
    refresh_locked();
  }
}

}  // namespace glimpse::service
