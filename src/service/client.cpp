#include "service/client.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/telemetry/span.hpp"
#include "common/telemetry/trace_context.hpp"

namespace glimpse::service {

Client Client::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("unix socket path too long: " + path);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_UNIX) failed");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    int e = errno;
    ::close(fd);
    throw std::runtime_error("connect(" + path + ") failed: " + std::strerror(e));
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0)
    throw std::runtime_error("resolve " + host + " failed: " + gai_strerror(rc));
  int fd = -1;
  int err = 0;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    err = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0)
    throw std::runtime_error("connect(" + host + ":" + service +
                             ") failed: " + std::strerror(err));
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      auth_(std::move(other.auth_)),
      buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    auth_ = std::move(other.auth_);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Request Client::decorate(const Request& req) const {
  Request wired = req;
  if (wired.auth.empty()) wired.auth = auth_;
  if (telemetry::tracing_enabled())
    wired.traceparent =
        telemetry::to_traceparent(telemetry::current_trace_context());
  return wired;
}

Response Client::call(const Request& req) {
  if (!telemetry::tracing_enabled()) return call_impl(decorate(req));
  // Client-side request span: the root of the distributed trace (or a child
  // of the caller's ambient context). The traceparent sent on the wire names
  // this span, so daemon-side spans stitch underneath it.
  telemetry::TraceContext ctx = telemetry::current_trace_context();
  if (!ctx.valid()) {
    ctx = telemetry::make_trace_context();
    ctx.span_id = 0;  // root pending: the request span becomes the trace root
  }
  telemetry::ScopedTraceContext scope(ctx);
  telemetry::Span span("client.request");
  span.set_note(to_string(req.type).data());
  return call_impl(decorate(req));
}

Response Client::subscribe(
    std::uint64_t job_id, const std::function<void(const Response&)>& on_update) {
  Request req;
  req.type = RequestType::kSubscribe;
  req.job_id = job_id;
  // Same span discipline as call(), held across the whole stream.
  telemetry::TraceContext ctx = telemetry::current_trace_context();
  if (telemetry::tracing_enabled() && !ctx.valid()) {
    ctx = telemetry::make_trace_context();
    ctx.span_id = 0;
  }
  telemetry::ScopedTraceContext scope(ctx);
  telemetry::Span span("client.request");
  span.set_note("subscribe");
  send_request(decorate(req));
  while (true) {
    Response r = read_response();
    if (r.type != ResponseType::kStatus) return r;  // kResult or kError
    if (on_update) on_update(r);
  }
}

Response Client::call_impl(const Request& req) {
  send_request(req);
  return read_response();
}

void Client::send_request(const Request& req) {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  const std::string payload = encode_request(req) + "\n";
  std::size_t off = 0;
  while (off < payload.size()) {
    ssize_t n = ::send(fd_, payload.data() + off, payload.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send failed: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

Response Client::read_response() {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  while (true) {
    std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      Response resp;
      std::string err;
      if (!parse_response(line, resp, err))
        throw std::runtime_error("bad response from daemon: " + err);
      return resp;
    }
    if (buffer_.size() > kMaxLineBytes)
      throw std::runtime_error("daemon response line too long");
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw std::runtime_error("connection closed by daemon");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Response Client::ping() {
  Request r;
  r.type = RequestType::kPing;
  return call(r);
}

Response Client::submit(const std::string& client_name, std::int64_t priority,
                        const JobSpec& job) {
  Request r;
  r.type = RequestType::kSubmit;
  r.client = client_name;
  r.priority = priority;
  r.job = job;
  return call(r);
}

Response Client::status(std::uint64_t job_id) {
  Request r;
  r.type = RequestType::kStatus;
  r.job_id = job_id;
  return call(r);
}

Response Client::result(std::uint64_t job_id, bool wait) {
  Request r;
  r.type = RequestType::kResult;
  r.job_id = job_id;
  r.wait = wait;
  return call(r);
}

Response Client::cancel(std::uint64_t job_id) {
  Request r;
  r.type = RequestType::kCancel;
  r.job_id = job_id;
  return call(r);
}

Response Client::stats() {
  Request r;
  r.type = RequestType::kStats;
  return call(r);
}

Response Client::drain() {
  Request r;
  r.type = RequestType::kDrain;
  return call(r);
}

Response Client::shutdown() {
  Request r;
  r.type = RequestType::kShutdown;
  return call(r);
}

}  // namespace glimpse::service
