#include "service/job_queue.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace glimpse::service {

JobQueue::JobQueue(JobQueueOptions options) : options_(options) {
  GLIMPSE_CHECK(options_.max_depth >= 1);
}

Admission JobQueue::push(QueuedJob job, bool force) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!force) {
    if (depth_ >= options_.max_depth)
      return {false, "saturated", options_.retry_after_s};
    if (options_.max_per_client > 0 &&
        client_depth_[job.client] >= options_.max_per_client)
      return {false, "client_saturated", options_.retry_after_s};
  }
  Level& level = levels_[-job.priority];
  auto it = level.per_client.try_emplace(job.client).first;
  if (it->second.empty()) level.rotation.push_back(job.client);
  ++client_depth_[job.client];
  it->second.push_back(std::move(job));
  ++depth_;
  return {true, "", 0.0};
}

bool JobQueue::pop(QueuedJob& out) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto lit = levels_.begin(); lit != levels_.end();) {
    Level& level = lit->second;
    if (level.rotation.empty()) {
      lit = levels_.erase(lit);
      continue;
    }
    std::string client = std::move(level.rotation.front());
    level.rotation.pop_front();
    auto cit = level.per_client.find(client);
    // erase() may leave a rotation entry for an emptied client; skip it.
    if (cit == level.per_client.end() || cit->second.empty()) {
      if (cit != level.per_client.end()) level.per_client.erase(cit);
      continue;
    }
    out = std::move(cit->second.front());
    cit->second.pop_front();
    if (cit->second.empty()) {
      level.per_client.erase(cit);
    } else {
      level.rotation.push_back(client);  // fairness: back of the line
    }
    --depth_;
    auto dit = client_depth_.find(out.client);
    if (dit != client_depth_.end() && --dit->second == 0) client_depth_.erase(dit);
    return true;
  }
  return false;
}

bool JobQueue::erase(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [neg_prio, level] : levels_) {
    for (auto cit = level.per_client.begin(); cit != level.per_client.end(); ++cit) {
      auto& fifo = cit->second;
      auto it = std::find_if(fifo.begin(), fifo.end(),
                             [id](const QueuedJob& j) { return j.id == id; });
      if (it == fifo.end()) continue;
      const std::string client = cit->first;
      fifo.erase(it);
      --depth_;
      auto dit = client_depth_.find(client);
      if (dit != client_depth_.end() && --dit->second == 0)
        client_depth_.erase(dit);
      if (fifo.empty()) {
        auto rit = std::find(level.rotation.begin(), level.rotation.end(), client);
        if (rit != level.rotation.end()) level.rotation.erase(rit);
        level.per_client.erase(cit);
      }
      return true;
    }
  }
  return false;
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

}  // namespace glimpse::service
