// Socket front-end of the glimpsed daemon: accepts connections on a
// Unix-domain socket and/or a TCP port, frames the line-delimited protocol,
// and forwards each request to a RequestHandler (the SessionManager in
// glimpsed, the shard Router in glimpse-router).
//
// One accept thread polls the listeners (a self-pipe breaks the poll on
// stop), and each connection gets its own thread — connections are
// long-lived and may legitimately block for minutes inside
// result(wait=true) or drain, so multiplexing them onto one loop would let
// a single waiting client stall everyone else's traffic.
//
// Error discipline mirrors the protocol layer: a malformed line gets an
// `error` response and the conversation continues; an overlong line (cap
// kMaxLineBytes) gets an error and the connection is closed — the peer is
// either broken or hostile, and resynchronizing inside a multi-megabyte
// "line" helps neither.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/request_handler.hpp"

namespace glimpse::service {

class SessionManager;

struct ServerOptions {
  /// Unix-domain socket path; empty disables the UDS listener. A stale
  /// socket file from a crashed daemon is removed before binding.
  std::string unix_path;
  /// TCP port; -1 disables the TCP listener, 0 binds an ephemeral port
  /// (read it back with tcp_port()). Binds on 127.0.0.1 unless
  /// tcp_bind_any is set.
  int tcp_port = -1;
  /// Bind TCP on 0.0.0.0 instead of loopback. Refused by start() unless
  /// auth_token is set: the protocol must not face external interfaces
  /// unauthenticated.
  bool tcp_bind_any = false;
  /// Shared-secret token (protocol v3). Non-empty makes every request —
  /// on every listener, loopback included — carry the matching "auth"
  /// member or be refused with an "unauthorized" error.
  std::string auth_token;
};

class Server {
 public:
  /// Does not listen yet; call start(). `handler` must outlive the server.
  Server(RequestHandler& handler, ServerOptions options);
  /// Convenience for the common daemon shape (the manager is the handler).
  Server(SessionManager& manager, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the accept thread. Throws on bind failure.
  void start();

  /// Block until a client sends `shutdown` or stop() is called.
  void wait_shutdown();

  /// Stop the handler (checkpoints persist), close every listener and
  /// connection, join all threads. Idempotent; the destructor calls it.
  void stop();

  /// Actual TCP port after start() (useful with tcp_port = 0). -1 if no
  /// TCP listener.
  int tcp_port() const { return bound_tcp_port_; }
  const std::string& unix_path() const { return options_.unix_path; }

 private:
  void accept_loop();
  void connection_loop(int fd);
  /// Serve one request line; false closes the connection.
  bool serve_line(int fd, const std::string& line);
  bool send_all(int fd, const std::string& payload);

  RequestHandler& handler_;
  ServerOptions options_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe: stop() breaks the poll

  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool stopping_ = false;
  std::map<int, std::thread> connections_;  ///< by fd
  std::vector<std::thread> finished_;  ///< reaped by later connections + stop()

  std::thread acceptor_;
};

}  // namespace glimpse::service
