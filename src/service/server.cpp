#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/logging.hpp"
#include "common/telemetry/span.hpp"
#include "common/telemetry/trace_context.hpp"
#include "service/protocol.hpp"
#include "service/session_manager.hpp"

namespace glimpse::service {

namespace {

int make_listener_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path))
    throw std::invalid_argument("unix socket path too long: " + path);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_UNIX) failed");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // stale socket from a crashed daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw std::runtime_error("bind(" + path + ") failed: " + std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("listen(" + path + ") failed");
  }
  return fd;
}

int make_listener_tcp(int port, bool bind_any, int& bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_INET) failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(bind_any ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw std::runtime_error("bind(tcp " + std::to_string(port) +
                             ") failed: " + std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("listen(tcp) failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    throw std::runtime_error("getsockname failed");
  }
  bound_port = ntohs(bound.sin_port);
  return fd;
}

}  // namespace

Server::Server(RequestHandler& handler, ServerOptions options)
    : handler_(handler), options_(std::move(options)) {}

Server::Server(SessionManager& manager, ServerOptions options)
    : Server(static_cast<RequestHandler&>(manager), std::move(options)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (options_.tcp_bind_any && options_.auth_token.empty())
    throw std::invalid_argument(
        "refusing to bind TCP on all interfaces without an auth token");
  if (::pipe(wake_pipe_) != 0) throw std::runtime_error("pipe failed");
  if (!options_.unix_path.empty()) unix_fd_ = make_listener_unix(options_.unix_path);
  if (options_.tcp_port >= 0)
    tcp_fd_ = make_listener_tcp(options_.tcp_port, options_.tcp_bind_any,
                                bound_tcp_port_);
  if (unix_fd_ < 0 && tcp_fd_ < 0)
    throw std::invalid_argument("server has no listeners configured");
  acceptor_ = std::thread(&Server::accept_loop, this);
}

void Server::wait_shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [&] { return shutdown_requested_ || stopping_; });
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  shutdown_cv_.notify_all();
  // Stop the handler first: it wakes any connection thread blocked in
  // result(wait=true)/drain so the socket shutdowns below can take effect.
  handler_.stop();
  if (wake_pipe_[1] >= 0) {
    char b = 'x';
    ssize_t ignored = ::write(wake_pipe_[1], &b, 1);
    (void)ignored;
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (auto& [fd, t] : connections_) ::shutdown(fd, SHUT_RDWR);
    shutdown_cv_.wait(lock, [&] { return connections_.empty(); });
  }
  for (std::thread& t : finished_)
    if (t.joinable()) t.join();
  finished_.clear();
  for (int* fd : {&unix_fd_, &tcp_fd_, &wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void Server::accept_loop() {
  while (true) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = {wake_pipe_[0], POLLIN, 0};
    if (unix_fd_ >= 0) fds[n++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[n++] = {tcp_fd_, POLLIN, 0};
    if (::poll(fds, n, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[0].revents != 0) return;  // stop() wrote to the self-pipe
    for (nfds_t i = 1; i < n; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      int fd = ::accept(fds[i].fd, nullptr, nullptr);
      if (fd < 0) continue;
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(fd);
        continue;
      }
      // The new thread's final cleanup also locks mu_, so it cannot finish
      // before this emplace lands.
      std::thread t(&Server::connection_loop, this, fd);
      connections_.emplace(fd, std::move(t));
    }
  }
}

bool Server::send_all(int fd, const std::string& payload) {
  std::size_t off = 0;
  while (off < payload.size()) {
    ssize_t n = ::send(fd, payload.data() + off, payload.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool Server::serve_line(int fd, const std::string& line) {
  Request req;
  std::string err;
  if (!parse_request(line, req, err))
    return send_all(fd, encode_response(error_response(err)) + "\n");
  // Every response for this request echoes the traceparent so the client
  // can correlate; the handler may emit several (v3 subscribe streams).
  const RequestHandler::Emit emit = [&](const Response& r) {
    Response out = r;
    out.traceparent = req.traceparent;
    return send_all(fd, encode_response(out) + "\n");
  };
  // Authentication gates everything below, shutdown included. A mismatch
  // answers with an error and keeps the conversation open, same as a
  // malformed line — a well-meaning client can retry with the right token.
  if (!options_.auth_token.empty() && req.auth != options_.auth_token)
    return emit(error_response("unauthorized"));
  // Adopt the client's trace context for the duration of this request: the
  // server.request span (and everything the handlers start underneath it,
  // down to per-attempt measurer spans) stitches under the client's request
  // span. parse_request already validated the traceparent field.
  telemetry::TraceContext inbound;
  if (telemetry::tracing_enabled() && !req.traceparent.empty())
    telemetry::parse_traceparent(req.traceparent, inbound);
  telemetry::ScopedTraceContext trace_scope(inbound);
  telemetry::Span request_span("server.request");
  request_span.set_note(to_string(req.type).data());
  switch (req.type) {
    case RequestType::kPing: {
      Response resp;
      resp.type = ResponseType::kPong;
      return emit(resp);
    }
    case RequestType::kShutdown: {
      Response resp;
      resp.type = ResponseType::kOk;
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_requested_ = true;
      shutdown_cv_.notify_all();
      emit(resp);
      return false;
    }
    default:
      // submit / status / result / cancel / subscribe / stats / drain all
      // belong to the handler behind this socket.
      return handler_.handle(req, emit);
  }
}

void Server::connection_loop(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed, or stop() shut the socket down
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    while (open) {
      std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      start = nl + 1;
      if (line.size() > kMaxLineBytes) {
        // Same treatment as the no-newline overflow below: a peer that
        // frames lines this long is broken or hostile either way.
        send_all(fd, encode_response(error_response("line too long")) + "\n");
        open = false;
        break;
      }
      open = serve_line(fd, line);
    }
    buffer.erase(0, start);
    if (buffer.size() > kMaxLineBytes) {
      // Either broken or hostile; resyncing mid-"line" helps neither.
      send_all(fd, encode_response(error_response("line too long")) + "\n");
      break;
    }
  }
  // Close under the lock: stop() shutdown()s fds it finds in connections_,
  // and the fd number must not be recycled while that can still happen.
  // Also take over any previously finished threads — swapped out before
  // this thread parks its own handle, so it never tries to join itself —
  // and reap them after unlocking. Every handle in finished_ belongs to a
  // thread already past this critical section, so those joins return
  // promptly and finished_ stays bounded on a long-running daemon instead
  // of accumulating one joinable thread per connection ever served.
  std::vector<std::thread> reap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ::close(fd);
    reap.swap(finished_);
    auto it = connections_.find(fd);
    if (it != connections_.end()) {
      finished_.push_back(std::move(it->second));
      connections_.erase(it);
    }
    shutdown_cv_.notify_all();  // stop() waits for connections_ to empty
  }
  for (std::thread& t : reap)
    if (t.joinable()) t.join();
}

}  // namespace glimpse::service
