// Consistent-hash front door for a glimpsed fleet.
//
// The Router speaks the same wire protocol as glimpsed (it plugs into the
// same Server) but owns no scheduler: every submit is forwarded to the
// shard the ShardRing picks for the job's task/hardware key, and every
// status/result/cancel/subscribe follows the job to the shard that
// accepted it. Clients that can hash should embed a ShardRing and talk to
// shards directly; the router exists for clients that cannot (one socket,
// zero fleet knowledge) and as the place where fleet-wide stats/drain
// fan-out lives.
//
// Job ids: each shard numbers its own jobs from 1, so upstream ids
// collide across shards. The router hands out its own id space and keeps
// an id -> (shard, upstream id) route table; summaries are rewritten on
// the way back so a client only ever sees router ids.
//
// Failover: a forward that fails at the transport level (shard SIGKILLed
// mid-call) is retried against the same shard — the ring maps the job
// there and its spool lives there, so the job resumes bit-identically
// once the shard is restarted. Retries are bounded (~connect_retries *
// retry_delay_s seconds) and then surface an "unavailable" error.
//
// Upstream connections are per-forward (connect, call, close): strictly
// correct under any downstream concurrency — no head-of-line blocking on
// a shared upstream socket while a forwarded result(wait=true) blocks for
// minutes. Fleet control traffic is not the hot path; the hot path
// (cache-warm sweeps) talks to shards directly via the ring.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "service/request_handler.hpp"
#include "service/shard_ring.hpp"

namespace glimpse::service {

class Client;

/// One shard's address. Exactly one of unix_path / (host, port) is used;
/// a non-empty unix_path wins.
struct ShardEndpoint {
  std::string name;       ///< ring identity; must be unique in the fleet
  std::string unix_path;  ///< UDS address
  std::string host;       ///< TCP address (with port)
  int port = -1;
};

struct RouterOptions {
  std::vector<ShardEndpoint> shards;
  /// Token the router presents to shards (their --auth). Independent of
  /// whatever token the router's own Server demands from clients.
  std::string upstream_auth;
  /// Transport-failure retries per forward before giving up.
  int connect_retries = 40;
  /// Pause between retries (wall seconds).
  double retry_delay_s = 0.25;
};

class Router : public RequestHandler {
 public:
  explicit Router(RouterOptions options);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Dispatch one request (the Server keeps ping/shutdown). submit routes
  /// by ring; status/result/cancel/subscribe follow the route table;
  /// stats aggregates and drain fans out across every shard.
  bool handle(const Request& req, const Emit& emit) override;

  /// Break every in-flight upstream call so connection threads unblock.
  void stop() override;

  const ShardRing& ring() const { return ring_; }
  const RouterOptions& options() const { return options_; }

 private:
  /// Forward one request to `shard` with bounded transport-failure retry.
  /// kSubscribe streams interim responses through `emit` (nullptr emit for
  /// the single-response types). job ids in `req` must already be the
  /// shard's; responses come back unrewritten.
  Response forward(const std::string& shard, const Request& req,
                   const Emit* emit);
  Client connect_shard(const std::string& shard);
  /// Track an upstream socket so stop() can shut it down mid-call.
  void track(int fd);
  void untrack(int fd);

  RouterOptions options_;
  ShardRing ring_;
  std::map<std::string, ShardEndpoint> endpoints_;  ///< by shard name

  std::mutex mu_;
  bool stopping_ = false;
  std::uint64_t next_id_ = 1;
  /// Router job id -> (shard name, upstream job id).
  std::map<std::uint64_t, std::pair<std::string, std::uint64_t>> routes_;
  std::set<int> upstream_fds_;  ///< live upstream sockets (for stop())
};

}  // namespace glimpse::service
