// SessionManager: the glimpsed daemon's brain. Owns the job registry, the
// admission-controlled JobQueue, one scheduler thread driving the shared
// tuning/scheduler slot pool, the cross-job ResultCache, and the crash-safe
// spool.
//
// Threading model: connection threads call submit/status/result/cancel/
// stats/drain concurrently; all registry state lives behind one mutex. The
// scheduler itself (tuning/scheduler.hpp, NOT thread-safe) is touched only
// by the worker thread, which admits queued jobs between rounds, runs each
// round outside the lock, then refreshes every running job's JobSummary
// under the lock — so status() never races the scheduler.
//
// Crash safety: with a spool directory configured, every accepted job is
// persisted as `job-<id>.spec.json` before the client sees "accepted", the
// running session checkpoints to `job-<id>.ckpt` after every batch, and the
// settled summary lands in `job-<id>.result.json`. A restarted daemon
// re-admits every spec without a result — resuming from the checkpoint when
// one exists — so an accepted job survives SIGKILL and completes with the
// bit-identical trace an uninterrupted run would have produced (the
// determinism contract of tuning/checkpoint.hpp).
//
// Tuner registry: "random", "autotvm", "chameleon" — the checkpointable
// strategies that need no offline pretraining. "glimpse" and "dgp" require
// pretrained artifacts the daemon does not hold; submitting them is
// rejected at the door, not failed mid-run.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "service/job_queue.hpp"
#include "service/protocol.hpp"
#include "service/request_handler.hpp"

namespace glimpse::searchspace {
class TaskSet;
}
namespace glimpse::tuning {
class ConfigPredictor;
class ResultCache;
class Scheduler;
class WarmStartAdvisor;
}

namespace glimpse::service {

struct SessionManagerOptions {
  /// Concurrent measurer slots in the shared scheduler pool. >= 1.
  std::size_t slots = 4;
  JobQueueOptions queue;
  /// Crash-safe spool directory (specs, checkpoints, results). Empty
  /// disables persistence: jobs die with the daemon.
  std::string spool_dir;
  /// Shared result cache: "" off, "mem" memory-only, else a disk path
  /// (same encoding as GLIMPSE_RESULT_CACHE).
  std::string cache;
  /// Fleet shared cache tier: a directory of replicated per-shard JSONL
  /// tiers (`tier-<shard>.jsonl`). Non-empty overrides `cache`: this
  /// daemon appends its own tier there and periodically merges every
  /// peer's tier, so a cache hit on any shard eventually serves all
  /// shards. See tuning::ResultCacheOptions::shared_dir.
  std::string cache_shared_dir;
  /// This daemon's name inside the shared tier (file stem and peer
  /// identity). Required when cache_shared_dir is set.
  std::string shard_name;
  /// Per-client simulated-GPU-seconds quota (protocol v3). A client whose
  /// completed measurements have consumed at least this much simulated
  /// time has further submissions rejected ("quota_exhausted"). 0 means
  /// unlimited. Spent time is tracked for this daemon's lifetime.
  double quota_gpu_s = 0.0;
  /// Session checkpoint cadence, in batches (spooled daemons only).
  std::size_t checkpoint_every_batches = 1;
  /// Warm-start advisor (tuning/warmstart.hpp): before an autotvm/chameleon
  /// job's first proposal, mine the shared cache tiers for same-task donor
  /// entries, weight them by Blueprint distance, and seed the tuner with the
  /// top-k. Off by default — cold start is byte-for-byte the pre-warmstart
  /// behaviour. Clients can opt a single job out (JobSpec::warmstart).
  bool warmstart = false;
  /// Optional learned ConfigPredictor file (train with glimpse_warmstart)
  /// blended into the advisor's donor scores and used for predictor-only
  /// seeding when the tiers hold no donor. An unreadable or unfitted file
  /// logs a warning and is ignored — it never takes the daemon down.
  std::string warmstart_predictor;
  /// Settled jobs kept in the spool across restarts. recover_spool()
  /// garbage-collects all but the newest `spool_retain` settled entries
  /// (their spec/result files are deleted and they are not reloaded), so
  /// the spool directory, the in-memory registry, and startup time stay
  /// bounded across long restart sequences. 0 means keep everything.
  std::size_t spool_retain = 256;
};

/// All client-facing methods speak protocol Responses so the server layer
/// only frames and encodes.
class SessionManager : public RequestHandler {
 public:
  explicit SessionManager(SessionManagerOptions options = {});
  ~SessionManager() override;

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// RequestHandler: dispatch one parsed request (the Server handles ping
  /// and shutdown itself). kSubscribe streams interim kStatus responses
  /// through `emit` until the job settles with a final kResult.
  bool handle(const Request& req, const Emit& emit) override;

  /// Validate + admit one job. kAccepted with the job id, or kRejected
  /// ("saturated" / "client_saturated" / "draining", with a retry hint),
  /// or kError for specs naming unknown tuners/models/GPUs/tasks.
  Response submit(const std::string& client, std::int64_t priority,
                  const JobSpec& spec);

  /// kStatus with the job's current summary; kError for unknown ids.
  Response status(std::uint64_t job_id) const;

  /// kResult with the final summary once the job settled. Unsettled:
  /// blocks until settled when `wait`, else returns kStatus (poll again).
  Response result(std::uint64_t job_id, bool wait);

  /// Cancel a queued or running job (kOk; idempotent on settled jobs).
  Response cancel(std::uint64_t job_id);

  /// v3 push streaming: emit the job's current summary immediately, then
  /// one kStatus per visible progress change, then the final kResult (or
  /// kError on unknown ids / daemon stop). Returns the keep-open decision
  /// (false only when `emit` reported the connection gone).
  bool subscribe(std::uint64_t job_id, const Emit& emit);

  Response stats() const;

  /// Stop admitting new jobs and block until every accepted job settles.
  Response drain();
  bool draining() const;

  /// Stop the worker promptly (running jobs stay checkpointed in the spool
  /// for the next daemon). Idempotent; the destructor calls it.
  void stop() override;

  /// Jobs re-admitted from the spool by this process at startup.
  std::uint64_t recovered() const;

  const SessionManagerOptions& options() const { return options_; }

 private:
  struct JobRecord;

  void recover_spool();
  void worker_loop();
  /// Pop every queued job into the scheduler. Caller holds mu_.
  void admit_queued_locked();
  /// Sync running summaries from the scheduler; finalize settled jobs.
  /// Caller holds mu_.
  void refresh_locked();
  void finalize_locked(JobRecord& rec, std::string state, std::string error);
  void persist_spec(const JobRecord& rec);
  /// Spool the settled summary. False when the write failed (the job's
  /// checkpoint must then survive so a restart can still recover it).
  bool persist_result(const JobRecord& rec);
  std::string spool_file(std::uint64_t id, const char* suffix) const;
  const searchspace::TaskSet& task_set(const std::string& model);
  /// Builds tuner + measurer + session options into `rec`; throws on bad
  /// specs (validated at submit, so only resume-time surprises remain).
  void build_runtime(JobRecord& rec);

  SessionManagerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable worker_cv_;   ///< wake the scheduler thread
  std::condition_variable settled_cv_;  ///< wake result(wait=true) callers
  bool stop_ = false;
  bool draining_ = false;

  JobQueue queue_;
  std::map<std::uint64_t, std::unique_ptr<JobRecord>> records_;
  std::uint64_t next_id_ = 1;

  // Counters (guarded by mu_).
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t quota_rejections_ = 0;
  std::uint64_t resumed_ = 0;
  /// Simulated GPU seconds consumed per client (quota accounting).
  std::map<std::string, double> quota_spent_;
  // Per-priority-class admissions (jobs that entered the queue, including
  // spool re-admissions): priority > 0, == 0, < 0.
  std::uint64_t admitted_high_ = 0;
  std::uint64_t admitted_normal_ = 0;
  std::uint64_t admitted_low_ = 0;

  // Worker-thread-only state (see threading model above).
  std::unique_ptr<tuning::Scheduler> scheduler_;

  std::unique_ptr<tuning::ResultCache> cache_;
  std::unique_ptr<tuning::ConfigPredictor> predictor_;
  std::unique_ptr<tuning::WarmStartAdvisor> advisor_;
  std::map<std::string, std::unique_ptr<searchspace::TaskSet>> task_sets_;
  std::mutex task_sets_mu_;

  std::thread worker_;
};

}  // namespace glimpse::service
