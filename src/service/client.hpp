// Blocking client for the glimpsed wire protocol. One connection, one
// request in flight at a time (the protocol is strictly request/response).
// Used by tools/glimpse_client, the service tests, and the fleet example.
#pragma once

#include <cstdint>
#include <string>

#include "service/protocol.hpp"

namespace glimpse::service {

class Client {
 public:
  /// Both connectors throw std::runtime_error on failure.
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request, read one response. Throws on transport failure or
  /// an unparseable response; protocol-level errors come back as a normal
  /// Response of type kError / kRejected.
  Response call(const Request& req);

  // Convenience wrappers around call().
  Response ping();
  Response submit(const std::string& client_name, std::int64_t priority,
                  const JobSpec& job);
  Response status(std::uint64_t job_id);
  Response result(std::uint64_t job_id, bool wait);
  Response cancel(std::uint64_t job_id);
  Response stats();
  Response drain();
  Response shutdown();

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Transport body of call(): send one encoded request line, read one
  /// response line. call() wraps this with the client-side request span and
  /// traceparent injection when tracing is enabled.
  Response call_impl(const Request& req);

  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last response line
};

}  // namespace glimpse::service
