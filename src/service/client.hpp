// Blocking client for the glimpsed wire protocol. One connection, one
// request in flight at a time (the protocol is strictly request/response).
// Used by tools/glimpse_client, the service tests, and the fleet example.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "service/protocol.hpp"

namespace glimpse::service {

class Client {
 public:
  /// Both connectors throw std::runtime_error on failure.
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Shared-secret token attached to every request this client sends
  /// (protocol v3). Empty (the default) sends none.
  void set_auth(std::string token) { auth_ = std::move(token); }

  /// Underlying socket fd (-1 when disconnected). The Router uses it to
  /// shutdown() in-flight upstream calls from another thread on stop().
  int native_handle() const { return fd_; }

  /// Send one request, read one response. Throws on transport failure or
  /// an unparseable response; protocol-level errors come back as a normal
  /// Response of type kError / kRejected.
  Response call(const Request& req);

  /// v3 push streaming: subscribe to `job_id` and invoke `on_update` for
  /// every interim kStatus the daemon pushes; returns the final response
  /// (kResult, or kError for unknown ids / daemon stop). A null callback
  /// just drains to the final response. Throws on transport failure.
  Response subscribe(std::uint64_t job_id,
                     const std::function<void(const Response&)>& on_update = {});

  // Convenience wrappers around call().
  Response ping();
  Response submit(const std::string& client_name, std::int64_t priority,
                  const JobSpec& job);
  Response status(std::uint64_t job_id);
  Response result(std::uint64_t job_id, bool wait);
  Response cancel(std::uint64_t job_id);
  Response stats();
  Response drain();
  Response shutdown();

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Transport body of call(): send one encoded request line, read one
  /// response line. call() wraps this with the client-side request span and
  /// traceparent injection when tracing is enabled.
  Response call_impl(const Request& req);
  void send_request(const Request& req);
  Response read_response();
  /// Inject the stored auth token (and, under tracing, the ambient
  /// traceparent) into an outgoing request.
  Request decorate(const Request& req) const;

  int fd_ = -1;
  std::string auth_;
  std::string buffer_;  ///< bytes received past the last response line
};

}  // namespace glimpse::service
