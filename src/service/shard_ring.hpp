// Consistent-hash ring mapping job keys onto a fleet of glimpsed shards.
//
// Every client (and the glimpse-router tool, for clients that cannot hash)
// builds the same ring from the same ordered node list and therefore routes
// any given (task, hardware) key to the same shard — no coordination
// service, no shared state. Each node contributes kVirtualNodesPerShard
// points on a 64-bit ring; a key is served by the first point clockwise
// from its hash. Virtual nodes keep the key ranges near-uniform (the
// shard_ring_test property pins distribution within 2x of uniform at 4
// shards), and removing a node remaps only the departed node's ranges —
// the property the failover path depends on: jobs on surviving shards keep
// their placement, so their spools and caches stay hot.
//
// Hashing is deliberately NOT std::hash: ring placement must be stable
// across processes, platforms, and libstdc++ versions, because the router
// and every client hash independently. stable_hash64 is FNV-1a finalized
// with the SplitMix64 mixer — the same construction the telemetry layer
// uses for ids, chosen here for its avalanche behaviour on short keys.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "service/protocol.hpp"

namespace glimpse::service {

/// Points each shard contributes to the ring. 64 keeps the max/min key
/// range ratio under 2 for small fleets while the ring stays tiny.
inline constexpr int kVirtualNodesPerShard = 64;

/// Cross-process-stable 64-bit hash (FNV-1a + SplitMix64 finalizer).
std::uint64_t stable_hash64(std::string_view s);

/// The routing key for a job: hashes the task/hardware axes (model, task
/// index, gpu) and nothing else. Seed, tuner, and trial budget are
/// excluded on purpose — every run of the same kernel on the same GPU
/// lands on the same shard, right next to that shard's cache entries for
/// it (result_cache keys on the same two fingerprints).
std::uint64_t shard_key(const JobSpec& job);

/// Deterministic consistent-hash ring over named shards.
class ShardRing {
 public:
  ShardRing() = default;
  explicit ShardRing(const std::vector<std::string>& nodes);

  /// Adds a shard (no-op if already present).
  void add(const std::string& node);
  /// Removes a shard and all its ring points (no-op if absent).
  void remove(const std::string& node);

  bool empty() const { return nodes_.empty(); }
  std::size_t size() const { return nodes_.size(); }
  /// Shard names in insertion-independent sorted order.
  std::vector<std::string> nodes() const;

  /// The shard owning `key`: first ring point clockwise from key, with
  /// wraparound. Must not be called on an empty ring.
  const std::string& node_for(std::uint64_t key) const;

  /// Convenience: node_for(shard_key(job)).
  const std::string& node_for_job(const JobSpec& job) const {
    return node_for(shard_key(job));
  }

 private:
  std::map<std::uint64_t, std::string> ring_;  ///< point -> shard name
  std::map<std::string, int> nodes_;           ///< shard -> live point count
};

}  // namespace glimpse::service
