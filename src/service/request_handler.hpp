// The seam between the socket front-end (server.hpp) and whatever answers
// requests behind it. PR 5 hard-wired the Server to the SessionManager;
// the fleet work needs a second implementation — the glimpse-router, which
// answers the same wire protocol by forwarding to shards over a consistent
// hash ring — so the dispatch is an interface now.
//
// `handle` may emit any number of responses for one request: exactly one
// for the classic request/response types, a stream of interim "status"
// responses terminated by a final "result"/"error" for v3 `subscribe`.
// The emit callback returns false once the connection is gone; handlers
// should stop emitting then. `handle`'s return value is the keep-open
// decision for the connection (the Server itself still owns `shutdown`).
#pragma once

#include <functional>

namespace glimpse::service {

struct Request;
struct Response;

class RequestHandler {
 public:
  virtual ~RequestHandler() = default;

  using Emit = std::function<bool(const Response&)>;

  /// Answer one parsed request by emitting responses. Returns whether the
  /// connection should stay open.
  virtual bool handle(const Request& req, const Emit& emit) = 0;

  /// Release anything blocking inside handle() (waiters, upstreams) so
  /// connection threads can be joined. Called from Server::stop().
  virtual void stop() = 0;
};

}  // namespace glimpse::service
