#include "service/protocol.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <sstream>
#include <utility>

#include "common/json_writer.hpp"
#include "common/telemetry/trace_context.hpp"

namespace glimpse::service {

namespace {

// ---------------------------------------------------------------------------
// Strict JSON value parser.
//
// Small recursive-descent parser for one protocol line. Strictness knobs:
// hard caps on nesting depth, value count, string/array/object sizes;
// duplicate object keys rejected; integer tokens kept exact (a seed is a
// uint64, and doubles lose exactness above 2^53); non-finite numbers and
// lone surrogates rejected. Anything outside the grammar fails with a
// message, never silently coerces.
// ---------------------------------------------------------------------------

constexpr int kMaxDepth = 8;
constexpr std::size_t kMaxValues = 16384;
constexpr std::size_t kMaxStringLen = 4096;
constexpr std::size_t kMaxArrayLen = 4096;
constexpr std::size_t kMaxObjectKeys = 64;

struct JsonValue {
  enum Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };
  Kind kind = kNull;
  bool b = false;
  std::int64_t i = 0;   ///< kInt
  std::uint64_t u = 0;  ///< kUint (magnitudes above int64 range)
  double d = 0.0;       ///< kDouble
  std::string s;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_number() const { return kind == kInt || kind == kUint || kind == kDouble; }
  double as_double() const {
    if (kind == kInt) return static_cast<double>(i);
    if (kind == kUint) return static_cast<double>(u);
    return d;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : p_(s.data()), end_(s.data() + s.size()) {}

  bool parse(JsonValue& out, std::string& error) {
    if (!value(out, 0)) {
      error = err_.empty() ? "malformed JSON" : err_;
      return false;
    }
    skip_ws();
    if (p_ != end_) {
      error = "trailing bytes after JSON value";
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* what) {
    if (err_.empty()) err_ = what;
    return false;
  }

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r'))
      ++p_;
  }

  bool lit(const char* s) {
    std::size_t n = std::strlen(s);
    if (static_cast<std::size_t>(end_ - p_) < n || std::memcmp(p_, s, n) != 0)
      return false;
    p_ += n;
    return true;
  }

  bool value(JsonValue& v, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (++values_ > kMaxValues) return fail("too many values");
    skip_ws();
    if (p_ == end_) return fail("unexpected end of input");
    switch (*p_) {
      case '{': return object(v, depth);
      case '[': return array(v, depth);
      case '"':
        v.kind = JsonValue::kString;
        return string(v.s);
      case 't':
        if (!lit("true")) return fail("bad literal");
        v.kind = JsonValue::kBool;
        v.b = true;
        return true;
      case 'f':
        if (!lit("false")) return fail("bad literal");
        v.kind = JsonValue::kBool;
        v.b = false;
        return true;
      case 'n':
        if (!lit("null")) return fail("bad literal");
        v.kind = JsonValue::kNull;
        return true;
      default: return number(v);
    }
  }

  bool object(JsonValue& v, int depth) {
    ++p_;  // '{'
    v.kind = JsonValue::kObject;
    skip_ws();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      skip_ws();
      if (p_ == end_ || *p_ != '"') return fail("expected object key");
      std::string key;
      if (!string(key)) return false;
      for (const auto& [k, unused] : v.object)
        if (k == key) return fail("duplicate object key");
      if (v.object.size() >= kMaxObjectKeys) return fail("too many object keys");
      skip_ws();
      if (p_ == end_ || *p_ != ':') return fail("expected ':'");
      ++p_;
      JsonValue member;
      if (!value(member, depth + 1)) return false;
      v.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (p_ == end_) return fail("unterminated object");
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      if (*p_ != ',') return fail("expected ',' or '}'");
      ++p_;
    }
  }

  bool array(JsonValue& v, int depth) {
    ++p_;  // '['
    v.kind = JsonValue::kArray;
    skip_ws();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      JsonValue elem;
      if (!value(elem, depth + 1)) return false;
      if (v.array.size() >= kMaxArrayLen) return fail("array too long");
      v.array.push_back(std::move(elem));
      skip_ws();
      if (p_ == end_) return fail("unterminated array");
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      if (*p_ != ',') return fail("expected ',' or ']'");
      ++p_;
    }
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool hex4(std::uint32_t& out) {
    if (end_ - p_ < 4) return fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) {
      char c = *p_++;
      int d;
      if (c >= '0' && c <= '9') d = c - '0';
      else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
      else return fail("bad \\u escape");
      v = (v << 4) | static_cast<std::uint32_t>(d);
    }
    out = v;
    return true;
  }

  bool string(std::string& out) {
    ++p_;  // opening quote
    out.clear();
    while (true) {
      if (p_ == end_) return fail("unterminated string");
      unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        ++p_;
        return true;
      }
      if (out.size() >= kMaxStringLen) return fail("string too long");
      if (c < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++p_;
        continue;
      }
      ++p_;  // backslash
      if (p_ == end_) return fail("truncated escape");
      char e = *p_++;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp;
          if (!hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
            if (end_ - p_ < 2 || p_[0] != '\\' || p_[1] != 'u')
              return fail("lone high surrogate");
            p_ += 2;
            std::uint32_t lo;
            if (!hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) return fail("bad surrogate pair");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("unknown escape");
      }
    }
  }

  bool number(JsonValue& v) {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    const char* digits = p_;
    while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    if (p_ == digits) return fail("bad number");
    // JSON forbids leading zeros on multi-digit integers.
    if (p_ - digits > 1 && *digits == '0') return fail("leading zero");
    bool integral = true;
    if (p_ != end_ && *p_ == '.') {
      integral = false;
      ++p_;
      const char* frac = p_;
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
      if (p_ == frac) return fail("bad fraction");
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      integral = false;
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      const char* exp = p_;
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
      if (p_ == exp) return fail("bad exponent");
    }
    std::string token(start, p_);
    if (integral) {
      errno = 0;
      if (token[0] == '-') {
        char* after = nullptr;
        long long x = std::strtoll(token.c_str(), &after, 10);
        if (errno == ERANGE || *after != '\0') return fail("integer out of range");
        v.kind = JsonValue::kInt;
        v.i = x;
      } else {
        char* after = nullptr;
        unsigned long long x = std::strtoull(token.c_str(), &after, 10);
        if (errno == ERANGE || *after != '\0') return fail("integer out of range");
        if (x <= static_cast<unsigned long long>(INT64_MAX)) {
          v.kind = JsonValue::kInt;
          v.i = static_cast<std::int64_t>(x);
        } else {
          v.kind = JsonValue::kUint;
          v.u = x;
        }
      }
      return true;
    }
    char* after = nullptr;
    double x = std::strtod(token.c_str(), &after);
    if (*after != '\0' || !std::isfinite(x)) return fail("bad number");
    v.kind = JsonValue::kDouble;
    v.d = x;
    return true;
  }

  const char* p_;
  const char* end_;
  std::string err_;
  std::size_t values_ = 0;
};

// ---------------------------------------------------------------------------
// Field extraction helpers (shared by the request/response converters).
// ---------------------------------------------------------------------------

const JsonValue* find(const JsonValue& obj, std::string_view key) {
  for (const auto& [k, v] : obj.object)
    if (k == key) return &v;
  return nullptr;
}

bool check_keys(const JsonValue& obj, std::initializer_list<std::string_view> allowed,
                std::string& error) {
  for (const auto& [k, v] : obj.object) {
    bool ok = false;
    for (std::string_view a : allowed)
      if (k == a) {
        ok = true;
        break;
      }
    if (!ok) {
      error = "unknown key '" + k + "'";
      return false;
    }
  }
  return true;
}

bool get_u64(const JsonValue& obj, std::string_view key, std::uint64_t& out,
             std::uint64_t lo, std::uint64_t hi, std::string& error,
             bool required = true) {
  const JsonValue* v = find(obj, key);
  if (!v) {
    if (required) error = "missing key '" + std::string(key) + "'";
    return !required;
  }
  std::uint64_t x;
  if (v->kind == JsonValue::kInt && v->i >= 0) {
    x = static_cast<std::uint64_t>(v->i);
  } else if (v->kind == JsonValue::kUint) {
    x = v->u;
  } else {
    error = "key '" + std::string(key) + "' must be a non-negative integer";
    return false;
  }
  if (x < lo || x > hi) {
    error = "key '" + std::string(key) + "' out of range";
    return false;
  }
  out = x;
  return true;
}

bool get_i64(const JsonValue& obj, std::string_view key, std::int64_t& out,
             std::int64_t lo, std::int64_t hi, std::string& error) {
  const JsonValue* v = find(obj, key);
  if (!v) {
    error = "missing key '" + std::string(key) + "'";
    return false;
  }
  if (v->kind != JsonValue::kInt) {
    error = "key '" + std::string(key) + "' must be an integer";
    return false;
  }
  if (v->i < lo || v->i > hi) {
    error = "key '" + std::string(key) + "' out of range";
    return false;
  }
  out = v->i;
  return true;
}

bool get_string(const JsonValue& obj, std::string_view key, std::string& out,
                std::size_t max_len, bool allow_empty, std::string& error) {
  const JsonValue* v = find(obj, key);
  if (!v) {
    error = "missing key '" + std::string(key) + "'";
    return false;
  }
  if (v->kind != JsonValue::kString) {
    error = "key '" + std::string(key) + "' must be a string";
    return false;
  }
  if (v->s.size() > max_len || (!allow_empty && v->s.empty())) {
    error = "key '" + std::string(key) + "' has bad length";
    return false;
  }
  out = v->s;
  return true;
}

bool get_nonneg_double(const JsonValue& obj, std::string_view key, double& out,
                       std::string& error, bool required = true) {
  const JsonValue* v = find(obj, key);
  if (!v) {
    if (required) error = "missing key '" + std::string(key) + "'";
    return !required;
  }
  if (!v->is_number()) {
    error = "key '" + std::string(key) + "' must be a number";
    return false;
  }
  double x = v->as_double();
  if (!std::isfinite(x) || x < 0.0) {
    error = "key '" + std::string(key) + "' must be finite and non-negative";
    return false;
  }
  out = x;
  return true;
}

bool get_bool(const JsonValue& obj, std::string_view key, bool& out,
              std::string& error, bool required = true) {
  const JsonValue* v = find(obj, key);
  if (!v) {
    if (required) error = "missing key '" + std::string(key) + "'";
    return !required;
  }
  if (v->kind != JsonValue::kBool) {
    error = "key '" + std::string(key) + "' must be a boolean";
    return false;
  }
  out = v->b;
  return true;
}

bool get_version(const JsonValue& obj, int& out, std::string& error) {
  std::uint64_t v = 0;
  if (!get_u64(obj, "v", v, 0, 1u << 20, error)) return false;
  if (v < static_cast<std::uint64_t>(kMinProtocolVersion) ||
      v > static_cast<std::uint64_t>(kProtocolVersion)) {
    error = "unsupported protocol version";
    return false;
  }
  out = static_cast<int>(v);
  return true;
}

/// Optional "auth" member (v3): absent is fine (unauthenticated peers);
/// when present it must be a non-empty token of sane length.
bool get_auth(const JsonValue& obj, std::string& out, std::string& error) {
  const JsonValue* v = find(obj, "auth");
  if (!v) return true;
  if (v->kind != JsonValue::kString) {
    error = "key 'auth' must be a string";
    return false;
  }
  if (v->s.empty() || v->s.size() > 256) {
    error = "key 'auth' has bad length";
    return false;
  }
  out = v->s;
  return true;
}

/// Optional "traceparent" member: absent is fine (v1 peers, untraced
/// requests); when present it must be a well-formed W3C traceparent.
bool get_traceparent(const JsonValue& obj, std::string& out, std::string& error) {
  const JsonValue* v = find(obj, "traceparent");
  if (!v) return true;
  if (v->kind != JsonValue::kString) {
    error = "key 'traceparent' must be a string";
    return false;
  }
  telemetry::TraceContext ctx;
  if (!telemetry::parse_traceparent(v->s, ctx)) {
    error = "malformed traceparent";
    return false;
  }
  out = v->s;
  return true;
}

bool parse_job_spec(const JsonValue& obj, JobSpec& out, std::string& error) {
  if (obj.kind != JsonValue::kObject) {
    error = "'job' must be an object";
    return false;
  }
  if (!check_keys(obj,
                  {"tuner", "model", "task", "gpu", "seed", "max_trials",
                   "batch_size", "plateau", "time_budget_s", "warmstart"},
                  error))
    return false;
  JobSpec spec;
  if (!get_string(obj, "tuner", spec.tuner, 64, false, error)) return false;
  if (!get_string(obj, "model", spec.model, 64, false, error)) return false;
  if (!get_u64(obj, "task", spec.task_index, 0, 10000, error)) return false;
  if (!get_string(obj, "gpu", spec.gpu, 128, false, error)) return false;
  if (!get_u64(obj, "seed", spec.seed, 0, UINT64_MAX, error)) return false;
  if (!get_u64(obj, "max_trials", spec.max_trials, 1, 1000000, error)) return false;
  if (!get_u64(obj, "batch_size", spec.batch_size, 1, 4096, error)) return false;
  if (!get_u64(obj, "plateau", spec.plateau_trials, 0, 1000000, error)) return false;
  if (!get_nonneg_double(obj, "time_budget_s", spec.time_budget_s, error))
    return false;
  if (!get_bool(obj, "warmstart", spec.warmstart, error, false)) return false;
  out = std::move(spec);
  return true;
}

void write_job_spec(JsonWriter& w, const JobSpec& spec) {
  w.begin_object();
  w.kv("tuner", spec.tuner);
  w.kv("model", spec.model);
  w.kv("task", spec.task_index);
  w.kv("gpu", spec.gpu);
  w.kv("seed", spec.seed);
  w.kv("max_trials", spec.max_trials);
  w.kv("batch_size", spec.batch_size);
  w.kv("plateau", spec.plateau_trials);
  w.kv("time_budget_s", spec.time_budget_s);
  // Omitted when true (the default) so old peers never see the key.
  if (!spec.warmstart) w.kv("warmstart", spec.warmstart);
  w.end_object();
}

bool parse_job_summary(const JsonValue& obj, JobSummary& out, std::string& error) {
  if (obj.kind != JsonValue::kObject) {
    error = "'job' must be an object";
    return false;
  }
  if (!check_keys(obj,
                  {"job_id", "client", "state", "trials", "faulted",
                   "best_gflops", "best_config", "elapsed_s", "error"},
                  error))
    return false;
  JobSummary s;
  if (!get_u64(obj, "job_id", s.job_id, 0, UINT64_MAX, error)) return false;
  if (!get_string(obj, "client", s.client, 256, true, error)) return false;
  if (!get_string(obj, "state", s.state, 16, false, error)) return false;
  if (s.state != "queued" && s.state != "running" && s.state != "done" &&
      s.state != "cancelled" && s.state != "failed") {
    error = "unknown job state '" + s.state + "'";
    return false;
  }
  if (!get_u64(obj, "trials", s.trials, 0, UINT64_MAX, error)) return false;
  if (!get_u64(obj, "faulted", s.faulted, 0, UINT64_MAX, error)) return false;
  if (!get_nonneg_double(obj, "best_gflops", s.best_gflops, error)) return false;
  const JsonValue* cfg = find(obj, "best_config");
  if (!cfg || cfg->kind != JsonValue::kArray) {
    error = "'best_config' must be an array";
    return false;
  }
  for (const JsonValue& e : cfg->array) {
    if (e.kind != JsonValue::kInt || e.i < 0 || e.i > 0xffffffffLL) {
      error = "'best_config' entries must be uint32";
      return false;
    }
    s.best_config.push_back(static_cast<std::uint32_t>(e.i));
  }
  if (!get_nonneg_double(obj, "elapsed_s", s.elapsed_s, error)) return false;
  if (!get_string(obj, "error", s.error, 1024, true, error)) return false;
  out = std::move(s);
  return true;
}

void write_job_summary(JsonWriter& w, const JobSummary& s) {
  w.begin_object();
  w.kv("job_id", s.job_id);
  w.kv("client", s.client);
  w.kv("state", s.state);
  w.kv("trials", s.trials);
  w.kv("faulted", s.faulted);
  w.kv("best_gflops", s.best_gflops);
  w.key("best_config");
  w.begin_array();
  for (std::uint32_t v : s.best_config) w.value(static_cast<std::uint64_t>(v));
  w.end_array();
  w.kv("elapsed_s", s.elapsed_s);
  w.kv("error", s.error);
  w.end_object();
}

bool parse_stats(const JsonValue& obj, ServiceStats& out, std::string& error) {
  if (obj.kind != JsonValue::kObject) {
    error = "'stats' must be an object";
    return false;
  }
  if (!check_keys(obj,
                  {"queue_depth", "running", "jobs_inflight",
                   "admitted_prio_high", "admitted_prio_normal",
                   "admitted_prio_low", "submitted", "completed", "cancelled",
                   "failed", "rejected", "quota_rejections", "resumed", "slots",
                   "cache_enabled", "cache_hits", "cache_inserts",
                   "shared_hits", "draining"},
                  error))
    return false;
  ServiceStats s;
  const std::uint64_t kMax = UINT64_MAX;
  if (!get_u64(obj, "queue_depth", s.queue_depth, 0, kMax, error)) return false;
  if (!get_u64(obj, "running", s.running, 0, kMax, error)) return false;
  // v2 additions; optional so v1 stats payloads still parse.
  if (!get_u64(obj, "jobs_inflight", s.jobs_inflight, 0, kMax, error,
               /*required=*/false))
    return false;
  if (!get_u64(obj, "admitted_prio_high", s.admitted_prio_high, 0, kMax, error,
               /*required=*/false))
    return false;
  if (!get_u64(obj, "admitted_prio_normal", s.admitted_prio_normal, 0, kMax,
               error, /*required=*/false))
    return false;
  if (!get_u64(obj, "admitted_prio_low", s.admitted_prio_low, 0, kMax, error,
               /*required=*/false))
    return false;
  if (!get_u64(obj, "submitted", s.submitted, 0, kMax, error)) return false;
  if (!get_u64(obj, "completed", s.completed, 0, kMax, error)) return false;
  if (!get_u64(obj, "cancelled", s.cancelled, 0, kMax, error)) return false;
  if (!get_u64(obj, "failed", s.failed, 0, kMax, error)) return false;
  if (!get_u64(obj, "rejected", s.rejected, 0, kMax, error)) return false;
  // v3 addition; optional so v1/v2 stats payloads still parse.
  if (!get_u64(obj, "quota_rejections", s.quota_rejections, 0, kMax, error,
               /*required=*/false))
    return false;
  if (!get_u64(obj, "resumed", s.resumed, 0, kMax, error)) return false;
  if (!get_u64(obj, "slots", s.slots, 0, kMax, error)) return false;
  if (!get_bool(obj, "cache_enabled", s.cache_enabled, error)) return false;
  if (!get_u64(obj, "cache_hits", s.cache_hits, 0, kMax, error)) return false;
  if (!get_u64(obj, "cache_inserts", s.cache_inserts, 0, kMax, error)) return false;
  if (!get_u64(obj, "shared_hits", s.shared_hits, 0, kMax, error)) return false;
  if (!get_bool(obj, "draining", s.draining, error)) return false;
  out = s;
  return true;
}

void write_stats(JsonWriter& w, const ServiceStats& s) {
  w.begin_object();
  w.kv("queue_depth", s.queue_depth);
  w.kv("running", s.running);
  w.kv("jobs_inflight", s.jobs_inflight);
  w.kv("admitted_prio_high", s.admitted_prio_high);
  w.kv("admitted_prio_normal", s.admitted_prio_normal);
  w.kv("admitted_prio_low", s.admitted_prio_low);
  w.kv("submitted", s.submitted);
  w.kv("completed", s.completed);
  w.kv("cancelled", s.cancelled);
  w.kv("failed", s.failed);
  w.kv("rejected", s.rejected);
  w.kv("quota_rejections", s.quota_rejections);
  w.kv("resumed", s.resumed);
  w.kv("slots", s.slots);
  w.kv("cache_enabled", s.cache_enabled);
  w.kv("cache_hits", s.cache_hits);
  w.kv("cache_inserts", s.cache_inserts);
  w.kv("shared_hits", s.shared_hits);
  w.kv("draining", s.draining);
  w.end_object();
}

}  // namespace

std::string_view to_string(RequestType t) {
  switch (t) {
    case RequestType::kPing: return "ping";
    case RequestType::kSubmit: return "submit";
    case RequestType::kStatus: return "status";
    case RequestType::kResult: return "result";
    case RequestType::kCancel: return "cancel";
    case RequestType::kSubscribe: return "subscribe";
    case RequestType::kStats: return "stats";
    case RequestType::kDrain: return "drain";
    case RequestType::kShutdown: return "shutdown";
  }
  return "?";
}

std::string_view to_string(ResponseType t) {
  switch (t) {
    case ResponseType::kPong: return "pong";
    case ResponseType::kAccepted: return "accepted";
    case ResponseType::kRejected: return "rejected";
    case ResponseType::kStatus: return "status";
    case ResponseType::kResult: return "result";
    case ResponseType::kStats: return "stats";
    case ResponseType::kOk: return "ok";
    case ResponseType::kError: return "error";
  }
  return "?";
}

std::string encode_request(const Request& r) {
  std::ostringstream os;
  {
    JsonWriter w(os, /*indent=*/0);
    w.begin_object();
    w.kv("v", static_cast<std::int64_t>(r.version));
    w.kv("type", to_string(r.type));
    switch (r.type) {
      case RequestType::kSubmit:
        w.kv("client", r.client);
        w.kv("priority", r.priority);
        w.key("job");
        write_job_spec(w, r.job);
        break;
      case RequestType::kStatus:
      case RequestType::kCancel:
      case RequestType::kSubscribe:
        w.kv("job_id", r.job_id);
        break;
      case RequestType::kResult:
        w.kv("job_id", r.job_id);
        w.kv("wait", r.wait);
        break;
      default: break;  // ping / stats / drain / shutdown carry no payload
    }
    if (!r.auth.empty()) w.kv("auth", r.auth);
    if (!r.traceparent.empty()) w.kv("traceparent", r.traceparent);
    w.end_object();
  }
  return os.str();
}

std::string encode_response(const Response& r) {
  std::ostringstream os;
  {
    JsonWriter w(os, /*indent=*/0);
    w.begin_object();
    w.kv("v", static_cast<std::int64_t>(r.version));
    w.kv("type", to_string(r.type));
    switch (r.type) {
      case ResponseType::kAccepted: w.kv("job_id", r.job_id); break;
      case ResponseType::kRejected:
        w.kv("reason", r.reason);
        w.kv("retry_after_s", r.retry_after_s);
        break;
      case ResponseType::kStatus:
      case ResponseType::kResult:
        w.key("job");
        write_job_summary(w, r.summary);
        break;
      case ResponseType::kStats:
        w.key("stats");
        write_stats(w, r.stats);
        break;
      case ResponseType::kError: w.kv("reason", r.reason); break;
      default: break;  // pong / ok carry no payload
    }
    if (!r.traceparent.empty()) w.kv("traceparent", r.traceparent);
    w.end_object();
  }
  return os.str();
}

bool parse_request(std::string_view line, Request& out, std::string& error) {
  if (line.size() > kMaxLineBytes) {
    error = "line too long";
    return false;
  }
  JsonValue root;
  if (!JsonParser(line).parse(root, error)) return false;
  if (root.kind != JsonValue::kObject) {
    error = "request must be a JSON object";
    return false;
  }
  Request r;
  if (!get_version(root, r.version, error)) return false;
  if (!get_auth(root, r.auth, error)) return false;
  if (!get_traceparent(root, r.traceparent, error)) return false;
  std::string type;
  if (!get_string(root, "type", type, 16, false, error)) return false;
  if (type == "ping" || type == "stats" || type == "drain" || type == "shutdown") {
    if (!check_keys(root, {"v", "type", "auth", "traceparent"}, error))
      return false;
    r.type = type == "ping"    ? RequestType::kPing
             : type == "stats" ? RequestType::kStats
             : type == "drain" ? RequestType::kDrain
                               : RequestType::kShutdown;
  } else if (type == "submit") {
    if (!check_keys(root,
                    {"v", "type", "client", "priority", "job", "auth",
                     "traceparent"},
                    error))
      return false;
    r.type = RequestType::kSubmit;
    if (!get_string(root, "client", r.client, 256, false, error)) return false;
    if (!get_i64(root, "priority", r.priority, -100, 100, error)) return false;
    const JsonValue* job = find(root, "job");
    if (!job) {
      error = "missing key 'job'";
      return false;
    }
    if (!parse_job_spec(*job, r.job, error)) return false;
  } else if (type == "status" || type == "cancel" || type == "subscribe") {
    if (!check_keys(root, {"v", "type", "job_id", "auth", "traceparent"}, error))
      return false;
    r.type = type == "status"   ? RequestType::kStatus
             : type == "cancel" ? RequestType::kCancel
                                : RequestType::kSubscribe;
    if (r.type == RequestType::kSubscribe && r.version < 3) {
      error = "'subscribe' requires protocol v3";
      return false;
    }
    if (!get_u64(root, "job_id", r.job_id, 0, UINT64_MAX, error)) return false;
  } else if (type == "result") {
    if (!check_keys(root, {"v", "type", "job_id", "wait", "auth", "traceparent"},
                    error))
      return false;
    r.type = RequestType::kResult;
    if (!get_u64(root, "job_id", r.job_id, 0, UINT64_MAX, error)) return false;
    if (!get_bool(root, "wait", r.wait, error, /*required=*/false)) return false;
  } else {
    error = "unknown request type '" + type + "'";
    return false;
  }
  out = std::move(r);
  return true;
}

bool parse_response(std::string_view line, Response& out, std::string& error) {
  if (line.size() > kMaxLineBytes) {
    error = "line too long";
    return false;
  }
  JsonValue root;
  if (!JsonParser(line).parse(root, error)) return false;
  if (root.kind != JsonValue::kObject) {
    error = "response must be a JSON object";
    return false;
  }
  Response r;
  if (!get_version(root, r.version, error)) return false;
  if (!get_traceparent(root, r.traceparent, error)) return false;
  std::string type;
  if (!get_string(root, "type", type, 16, false, error)) return false;
  if (type == "pong" || type == "ok") {
    if (!check_keys(root, {"v", "type", "traceparent"}, error)) return false;
    r.type = type == "pong" ? ResponseType::kPong : ResponseType::kOk;
  } else if (type == "accepted") {
    if (!check_keys(root, {"v", "type", "job_id", "traceparent"}, error))
      return false;
    r.type = ResponseType::kAccepted;
    if (!get_u64(root, "job_id", r.job_id, 0, UINT64_MAX, error)) return false;
  } else if (type == "rejected") {
    if (!check_keys(root, {"v", "type", "reason", "retry_after_s", "traceparent"},
                    error))
      return false;
    r.type = ResponseType::kRejected;
    if (!get_string(root, "reason", r.reason, 1024, false, error)) return false;
    if (!get_nonneg_double(root, "retry_after_s", r.retry_after_s, error))
      return false;
  } else if (type == "status" || type == "result") {
    if (!check_keys(root, {"v", "type", "job", "traceparent"}, error))
      return false;
    r.type = type == "status" ? ResponseType::kStatus : ResponseType::kResult;
    const JsonValue* job = find(root, "job");
    if (!job) {
      error = "missing key 'job'";
      return false;
    }
    if (!parse_job_summary(*job, r.summary, error)) return false;
  } else if (type == "stats") {
    if (!check_keys(root, {"v", "type", "stats", "traceparent"}, error))
      return false;
    r.type = ResponseType::kStats;
    const JsonValue* st = find(root, "stats");
    if (!st) {
      error = "missing key 'stats'";
      return false;
    }
    if (!parse_stats(*st, r.stats, error)) return false;
  } else if (type == "error") {
    if (!check_keys(root, {"v", "type", "reason", "traceparent"}, error))
      return false;
    r.type = ResponseType::kError;
    if (!get_string(root, "reason", r.reason, 1024, true, error)) return false;
  } else {
    error = "unknown response type '" + type + "'";
    return false;
  }
  out = std::move(r);
  return true;
}

Response error_response(std::string reason) {
  Response r;
  r.type = ResponseType::kError;
  r.reason = std::move(reason);
  return r;
}

std::string encode_spool_record(const SpoolRecord& r) {
  std::ostringstream os;
  {
    JsonWriter w(os, /*indent=*/0);
    w.begin_object();
    w.kv("v", static_cast<std::int64_t>(kProtocolVersion));
    w.kv("id", r.id);
    w.kv("client", r.client);
    w.kv("priority", r.priority);
    w.key("job");
    write_job_spec(w, r.job);
    if (!r.traceparent.empty()) w.kv("traceparent", r.traceparent);
    w.end_object();
  }
  return os.str();
}

bool parse_spool_record(std::string_view line, SpoolRecord& out, std::string& error) {
  if (line.size() > kMaxLineBytes) {
    error = "line too long";
    return false;
  }
  JsonValue root;
  if (!JsonParser(line).parse(root, error)) return false;
  if (root.kind != JsonValue::kObject) {
    error = "spool record must be a JSON object";
    return false;
  }
  int version = 0;
  if (!get_version(root, version, error)) return false;
  if (!check_keys(root, {"v", "id", "client", "priority", "job", "traceparent"},
                  error))
    return false;
  SpoolRecord r;
  if (!get_traceparent(root, r.traceparent, error)) return false;
  if (!get_u64(root, "id", r.id, 0, UINT64_MAX, error)) return false;
  if (!get_string(root, "client", r.client, 256, false, error)) return false;
  if (!get_i64(root, "priority", r.priority, -100, 100, error)) return false;
  const JsonValue* job = find(root, "job");
  if (!job) {
    error = "missing key 'job'";
    return false;
  }
  if (!parse_job_spec(*job, r.job, error)) return false;
  out = std::move(r);
  return true;
}

std::string encode_job_summary(const JobSummary& s) {
  std::ostringstream os;
  {
    JsonWriter w(os, /*indent=*/0);
    write_job_summary(w, s);
  }
  return os.str();
}

bool parse_job_summary_line(std::string_view line, JobSummary& out,
                            std::string& error) {
  if (line.size() > kMaxLineBytes) {
    error = "line too long";
    return false;
  }
  JsonValue root;
  if (!JsonParser(line).parse(root, error)) return false;
  return parse_job_summary(root, out, error);
}

}  // namespace glimpse::service
