// Admission-controlled job queue for the glimpsed daemon.
//
// Ordering: strictly by priority (higher first); within one priority level,
// round-robin across clients (each client keeps a FIFO of its own jobs, and
// the level serves clients in rotation) so one chatty client cannot starve
// the fleet. The whole order is deterministic in the submission sequence —
// no timestamps, no pointer ordering — which is what makes the daemon's
// end-to-end tests reproducible.
//
// Admission control: the queue is bounded. Pushing into a full queue (or
// past the per-client cap) is rejected with a suggested retry-after, never
// blocked — backpressure belongs at the edge, not inside the daemon. A
// `force` push bypasses the bounds for jobs that were already accepted once
// (spool recovery after a crash must never re-reject them).
//
// Thread-safe: connection threads push/erase concurrently with the
// scheduler thread popping.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "service/protocol.hpp"

namespace glimpse::service {

struct QueuedJob {
  std::uint64_t id = 0;
  std::string client;
  std::int64_t priority = 0;
  JobSpec spec;
};

struct JobQueueOptions {
  /// Total queued jobs across all clients and priorities. >= 1.
  std::size_t max_depth = 64;
  /// Queued jobs per client; 0 = no per-client cap.
  std::size_t max_per_client = 0;
  /// Suggested client backoff when saturated (wall-clock seconds).
  double retry_after_s = 2.0;
};

struct Admission {
  bool accepted = false;
  std::string reason;          ///< "saturated" | "client_saturated"
  double retry_after_s = 0.0;  ///< backoff hint when rejected
};

class JobQueue {
 public:
  explicit JobQueue(JobQueueOptions options = {});

  /// Admission-checked push. `force` skips the depth checks (spool
  /// recovery) but keeps ordering semantics.
  Admission push(QueuedJob job, bool force = false);

  /// Pop the next job per the ordering above. False when empty.
  bool pop(QueuedJob& out);

  /// Remove a queued job by id (cancel-before-run). False when not queued.
  bool erase(std::uint64_t id);

  std::size_t depth() const;
  bool empty() const { return depth() == 0; }
  const JobQueueOptions& options() const { return options_; }

 private:
  /// One priority level: per-client FIFOs served round-robin. `rotation`
  /// lists clients in service order; the front client serves one job, then
  /// moves to the back (when it still has queued jobs).
  struct Level {
    std::map<std::string, std::deque<QueuedJob>> per_client;
    std::deque<std::string> rotation;
  };

  JobQueueOptions options_;
  mutable std::mutex mu_;
  // Key = -priority so begin() is the highest priority level.
  std::map<std::int64_t, Level> levels_;
  std::size_t depth_ = 0;
  std::map<std::string, std::size_t> client_depth_;
};

}  // namespace glimpse::service
