#include "service/router.hpp"

#include <sys/socket.h>

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/telemetry/span.hpp"
#include "service/client.hpp"

namespace glimpse::service {

Router::Router(RouterOptions options) : options_(std::move(options)) {
  for (const ShardEndpoint& ep : options_.shards) {
    if (ep.name.empty())
      throw std::invalid_argument("shard endpoint needs a name");
    if (ep.unix_path.empty() && (ep.host.empty() || ep.port < 0))
      throw std::invalid_argument("shard '" + ep.name + "' has no address");
    if (!endpoints_.emplace(ep.name, ep).second)
      throw std::invalid_argument("duplicate shard name '" + ep.name + "'");
    ring_.add(ep.name);
  }
  if (ring_.empty())
    throw std::invalid_argument("router needs at least one shard");
}

Router::~Router() { stop(); }

void Router::stop() {
  std::lock_guard<std::mutex> lock(mu_);
  stopping_ = true;
  // Connection threads may be blocked inside a forwarded result(wait=true);
  // shutting the upstream sockets down fails those calls promptly so the
  // Server can join the threads.
  for (int fd : upstream_fds_) ::shutdown(fd, SHUT_RDWR);
}

void Router::track(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  upstream_fds_.insert(fd);
}

void Router::untrack(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  upstream_fds_.erase(fd);
}

Client Router::connect_shard(const std::string& shard) {
  const ShardEndpoint& ep = endpoints_.at(shard);
  Client c = ep.unix_path.empty() ? Client::connect_tcp(ep.host, ep.port)
                                  : Client::connect_unix(ep.unix_path);
  c.set_auth(options_.upstream_auth);
  return c;
}

Response Router::forward(const std::string& shard, const Request& req,
                         const Emit* emit) {
  Request wired = req;
  wired.auth.clear();  // the router's credential replaces the client's
  for (int attempt = 0;; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return error_response("router stopping");
    }
    try {
      Client up = connect_shard(shard);
      track(up.native_handle());
      struct Untrack {
        Router* r;
        int fd;
        ~Untrack() { r->untrack(fd); }
      } guard{this, up.native_handle()};
      telemetry::Span span("router.forward");
      span.set_note(endpoints_.at(shard).name.c_str());
      if (wired.type == RequestType::kSubscribe && emit != nullptr)
        return up.subscribe(wired.job_id,
                            [&](const Response& interim) { (*emit)(interim); });
      return up.call(wired);
    } catch (const std::exception& e) {
      // Transport failure: the shard died or restarted under us. The ring
      // still maps the job here and its spool lives here, so retrying the
      // same shard is what makes failover resume bit-identically.
      if (attempt >= options_.connect_retries)
        return error_response("shard '" + shard + "' unavailable: " + e.what());
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options_.retry_delay_s));
    }
  }
}

bool Router::handle(const Request& req, const Emit& emit) {
  switch (req.type) {
    case RequestType::kSubmit: {
      const std::string shard = ring_.node_for_job(req.job);
      Response r = forward(shard, req, nullptr);
      if (r.type == ResponseType::kAccepted) {
        std::lock_guard<std::mutex> lock(mu_);
        const std::uint64_t rid = next_id_++;
        routes_[rid] = {shard, r.job_id};
        r.job_id = rid;
      }
      return emit(r);
    }
    case RequestType::kStatus:
    case RequestType::kResult:
    case RequestType::kCancel:
    case RequestType::kSubscribe: {
      std::pair<std::string, std::uint64_t> route;
      bool known = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = routes_.find(req.job_id);
        if (it != routes_.end()) {
          route = it->second;
          known = true;
        }
      }
      if (!known) return emit(error_response("unknown job_id"));
      const std::uint64_t rid = req.job_id;
      Request up = req;
      up.job_id = route.second;
      if (req.type == RequestType::kSubscribe) {
        const Emit rewrap = [&](const Response& interim) {
          Response out = interim;
          out.summary.job_id = rid;
          return emit(out);
        };
        Response fin = forward(route.first, up, &rewrap);
        if (fin.type == ResponseType::kResult ||
            fin.type == ResponseType::kStatus)
          fin.summary.job_id = rid;
        return emit(fin);
      }
      Response r = forward(route.first, up, nullptr);
      if (r.type == ResponseType::kStatus || r.type == ResponseType::kResult)
        r.summary.job_id = rid;
      return emit(r);
    }
    case RequestType::kStats: {
      // Fleet-wide stats: counters sum, flags OR. endpoints_ is a sorted
      // map, so shard visit order (and failure attribution) is stable.
      Response agg;
      agg.type = ResponseType::kStats;
      for (const auto& [name, ep] : endpoints_) {
        Request sreq;
        sreq.type = RequestType::kStats;
        Response r = forward(name, sreq, nullptr);
        if (r.type != ResponseType::kStats)
          return emit(error_response("stats from shard '" + name +
                                     "' failed: " + r.reason));
        const ServiceStats& s = r.stats;
        ServiceStats& a = agg.stats;
        a.queue_depth += s.queue_depth;
        a.running += s.running;
        a.jobs_inflight += s.jobs_inflight;
        a.admitted_prio_high += s.admitted_prio_high;
        a.admitted_prio_normal += s.admitted_prio_normal;
        a.admitted_prio_low += s.admitted_prio_low;
        a.submitted += s.submitted;
        a.completed += s.completed;
        a.cancelled += s.cancelled;
        a.failed += s.failed;
        a.rejected += s.rejected;
        a.quota_rejections += s.quota_rejections;
        a.resumed += s.resumed;
        a.slots += s.slots;
        a.cache_enabled = a.cache_enabled || s.cache_enabled;
        a.cache_hits += s.cache_hits;
        a.cache_inserts += s.cache_inserts;
        a.shared_hits += s.shared_hits;
        a.draining = a.draining || s.draining;
      }
      return emit(agg);
    }
    case RequestType::kDrain: {
      for (const auto& [name, ep] : endpoints_) {
        Request dreq;
        dreq.type = RequestType::kDrain;
        Response r = forward(name, dreq, nullptr);
        if (r.type != ResponseType::kOk)
          return emit(error_response("drain of shard '" + name +
                                     "' failed: " + r.reason));
      }
      Response ok;
      ok.type = ResponseType::kOk;
      return emit(ok);
    }
    default:
      // kPing/kShutdown stay with the Server; nothing else exists.
      return emit(error_response("unsupported request type"));
  }
}

}  // namespace glimpse::service
