#include "service/shard_ring.hpp"

#include <cassert>

namespace glimpse::service {
namespace {

/// SplitMix64 finalizer: full-avalanche mix of a 64-bit state.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s, std::uint64_t h) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::uint64_t stable_hash64(std::string_view s) {
  return mix64(fnv1a(s, 0xcbf29ce484222325ull));
}

std::uint64_t shard_key(const JobSpec& job) {
  // Task/hardware axes only; '\x1f' separators keep ("ab","c") and
  // ("a","bc") distinct without escaping (database names never contain
  // control characters).
  std::uint64_t h = fnv1a(job.model, 0xcbf29ce484222325ull);
  h = fnv1a("\x1f", h);
  h = fnv1a(job.gpu, h);
  h = fnv1a("\x1f", h);
  for (std::uint64_t t = job.task_index;; t >>= 8) {
    char byte = static_cast<char>(t & 0xff);
    h = fnv1a({&byte, 1}, h);
    if (t < 0x100) break;
  }
  return mix64(h);
}

ShardRing::ShardRing(const std::vector<std::string>& nodes) {
  for (const std::string& n : nodes) add(n);
}

void ShardRing::add(const std::string& node) {
  if (nodes_.count(node)) return;
  int placed = 0;
  for (int i = 0; i < kVirtualNodesPerShard; ++i) {
    const std::uint64_t point =
        stable_hash64(node + '#' + std::to_string(i));
    // A point collision between shards is a ~2^-64 event per pair; first
    // owner keeps the point so placement never depends on add() order of
    // the survivors after a remove().
    if (ring_.emplace(point, node).second) ++placed;
  }
  nodes_[node] = placed;
}

void ShardRing::remove(const std::string& node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return;
  for (auto rit = ring_.begin(); rit != ring_.end();) {
    if (rit->second == node)
      rit = ring_.erase(rit);
    else
      ++rit;
  }
  nodes_.erase(it);
}

std::vector<std::string> ShardRing::nodes() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [name, points] : nodes_) out.push_back(name);
  return out;
}

const std::string& ShardRing::node_for(std::uint64_t key) const {
  assert(!ring_.empty() && "node_for on an empty ring");
  auto it = ring_.lower_bound(key);
  if (it == ring_.end()) it = ring_.begin();  // wraparound
  return it->second;
}

}  // namespace glimpse::service
