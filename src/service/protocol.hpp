// glimpsed wire protocol: line-delimited JSON over a byte stream.
//
// Every message is one JSON object on one line (LF-terminated; no embedded
// newlines — JsonWriter escapes control characters). Requests and responses
// carry a version field `"v"`; a daemon accepts any version in
// [kMinProtocolVersion, kProtocolVersion] and refuses versions it does not
// speak rather than guessing. Version 2 added an optional "traceparent"
// member (W3C trace context, common/telemetry/trace_context.hpp) to every
// request and response; v1 messages simply omit it, and peers that do not
// trace ignore it. Version 3 added (all optional, so v1/v2 still parse):
// an "auth" member on every request (shared-secret token, required by
// daemons serving non-loopback TCP), the "subscribe" request type (the
// server pushes a stream of "status" responses for the job on the same
// connection, terminated by a final "result" — push streaming instead of
// poll loops), and the "quota_rejections" stats counter (submissions
// refused because the client exhausted its simulated-GPU-seconds quota).
// The parser follows the repo's hardened-TextReader
// discipline: strict grammar, explicit caps (line length, nesting depth,
// string/array sizes), unknown or duplicate keys rejected, every numeric
// field range-checked — a garbled or hostile line yields a parse error
// message, never UB or a half-filled message. Encoding goes through the
// shared JsonWriter, so framing and escaping match every other
// machine-readable artifact in the repo.
//
// Requests (canonical encodings; the parser is key-order-insensitive):
//   {"v":1,"type":"ping"}
//   {"v":1,"type":"submit","client":"c1","priority":0,"job":{
//      "tuner":"random","model":"resnet18","task":1,"gpu":"Titan Xp",
//      "seed":7,"max_trials":64,"batch_size":8,"plateau":0,
//      "time_budget_s":0}}
//   {"v":1,"type":"status","job_id":3}
//   {"v":1,"type":"result","job_id":3,"wait":true}
//   {"v":1,"type":"cancel","job_id":3}
//   {"v":3,"type":"subscribe","job_id":3}
//   {"v":1,"type":"stats"}
//   {"v":1,"type":"drain"}
//   {"v":1,"type":"shutdown"}
//
// Optional members appended to any request in canonical order:
//   ...,"auth":"<token>","traceparent":"00-..."}
//
// Responses:
//   {"v":1,"type":"pong"} / {"v":1,"type":"ok"}
//   {"v":1,"type":"accepted","job_id":3}
//   {"v":1,"type":"rejected","reason":"saturated","retry_after_s":2}
//   {"v":1,"type":"status","job":{...}}   (also "result")
//   {"v":1,"type":"stats","stats":{...}}
//   {"v":1,"type":"error","reason":"..."}
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace glimpse::service {

inline constexpr int kProtocolVersion = 3;
/// Oldest version still accepted (v1 = the pre-tracing wire format).
inline constexpr int kMinProtocolVersion = 1;
/// Hard cap on one protocol line (bytes, newline excluded). Connections
/// sending longer lines are answered with an error and closed.
inline constexpr std::size_t kMaxLineBytes = 1 << 16;

/// What to tune: everything the daemon needs to build a (tuner, task,
/// hardware, measurer) job. Models and GPUs are referenced by their
/// database names, tuners by registry name (service/session_manager.hpp).
struct JobSpec {
  std::string tuner = "random";
  std::string model = "resnet18";
  std::uint64_t task_index = 0;  ///< index into the model's TaskSet
  std::string gpu = "Titan Xp";
  std::uint64_t seed = 1;
  std::uint64_t max_trials = 64;
  std::uint64_t batch_size = 8;
  std::uint64_t plateau_trials = 0;  ///< 0 disables plateau stopping
  double time_budget_s = 0.0;        ///< simulated seconds; 0 = unlimited
  /// Let the daemon seed this job from its warm-start advisor (ignored by
  /// daemons started without --warmstart). Default true; encoded on the
  /// wire only when false, so every pre-warmstart message still parses and
  /// old daemons never see the key.
  bool warmstart = true;

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

enum class RequestType {
  kPing,
  kSubmit,
  kStatus,
  kResult,
  kCancel,
  kSubscribe,  ///< v3: push-stream status updates until the job settles
  kStats,
  kDrain,
  kShutdown,
};
std::string_view to_string(RequestType t);

struct Request {
  int version = kProtocolVersion;
  RequestType type = RequestType::kPing;
  std::string client;         ///< submit: non-empty client identity
  std::int64_t priority = 0;  ///< submit: higher runs first, in [-100, 100]
  JobSpec job;                ///< submit
  std::uint64_t job_id = 0;   ///< status / result / cancel / subscribe
  bool wait = false;          ///< result: block until the job settles
  /// Optional shared-secret token (v3). A daemon started with an auth
  /// token refuses every request that does not carry the matching value;
  /// empty = unauthenticated (omitted on the wire).
  std::string auth;
  /// Optional W3C traceparent ("00-…") propagating the client's trace
  /// context into the daemon; empty = not traced (omitted on the wire).
  std::string traceparent;

  friend bool operator==(const Request&, const Request&) = default;
};

/// One job's externally visible lifecycle record.
struct JobSummary {
  std::uint64_t job_id = 0;
  std::string client;
  std::string state;  ///< queued | running | done | cancelled | failed
  std::uint64_t trials = 0;
  std::uint64_t faulted = 0;
  double best_gflops = 0.0;
  std::vector<std::uint32_t> best_config;  ///< empty until something valid
  double elapsed_s = 0.0;                  ///< simulated GPU seconds consumed
  std::string error;                       ///< failed jobs: what went wrong

  friend bool operator==(const JobSummary&, const JobSummary&) = default;
};

/// Daemon-wide counters, served to any client asking for "stats".
struct ServiceStats {
  std::uint64_t queue_depth = 0;
  std::uint64_t running = 0;
  /// Jobs accepted but not yet settled (queued + running).
  std::uint64_t jobs_inflight = 0;
  /// Admissions by priority class (priority > 0 / == 0 / < 0).
  std::uint64_t admitted_prio_high = 0;
  std::uint64_t admitted_prio_normal = 0;
  std::uint64_t admitted_prio_low = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  /// v3: submissions refused because the client's simulated-GPU-seconds
  /// quota was exhausted (a subset of `rejected`).
  std::uint64_t quota_rejections = 0;
  std::uint64_t resumed = 0;  ///< jobs recovered from the spool on restart
  std::uint64_t slots = 0;
  bool cache_enabled = false;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_inserts = 0;
  std::uint64_t shared_hits = 0;  ///< cross-job in-round config sharing
  bool draining = false;

  friend bool operator==(const ServiceStats&, const ServiceStats&) = default;
};

enum class ResponseType {
  kPong,
  kAccepted,
  kRejected,
  kStatus,
  kResult,
  kStats,
  kOk,
  kError,
};
std::string_view to_string(ResponseType t);

struct Response {
  int version = kProtocolVersion;
  ResponseType type = ResponseType::kError;
  std::uint64_t job_id = 0;    ///< accepted
  std::string reason;          ///< rejected / error
  double retry_after_s = 0.0;  ///< rejected: back off this long (wall s)
  JobSummary summary;          ///< status / result
  ServiceStats stats;          ///< stats
  /// Echo of the request's traceparent (empty = untraced request).
  std::string traceparent;

  friend bool operator==(const Response&, const Response&) = default;
};

/// Compact single-line encodings (no trailing newline; the transport adds
/// it). Canonical key order as documented above.
std::string encode_request(const Request& r);
std::string encode_response(const Response& r);

/// Strict one-line parse. Returns false and fills `error` (a short
/// human-readable reason) on any deviation; `out` is untouched on failure.
bool parse_request(std::string_view line, Request& out, std::string& error);
bool parse_response(std::string_view line, Response& out, std::string& error);

/// Convenience: an error response with kProtocolVersion and `reason`.
Response error_response(std::string reason);

/// Spool persistence record for one accepted job (daemon-internal; written
/// at accept time, re-read on daemon restart to recover in-flight work).
/// Same strict parse discipline as the wire messages.
struct SpoolRecord {
  std::uint64_t id = 0;
  std::string client;
  std::int64_t priority = 0;
  JobSpec job;
  /// Trace identity of the accepted job, so a job recovered after a daemon
  /// restart stays stitched to the trace that submitted it. Optional.
  std::string traceparent;

  friend bool operator==(const SpoolRecord&, const SpoolRecord&) = default;
};
std::string encode_spool_record(const SpoolRecord& r);
bool parse_spool_record(std::string_view line, SpoolRecord& out, std::string& error);

/// Settled-job summary persistence (the spool's result file).
std::string encode_job_summary(const JobSummary& s);
bool parse_job_summary_line(std::string_view line, JobSummary& out,
                            std::string& error);

}  // namespace glimpse::service
