#include "ml/pca.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/stats.hpp"

namespace glimpse::ml {

void Pca::fit(const linalg::Matrix& x, std::size_t k) {
  GLIMPSE_CHECK(x.rows() >= 2);
  GLIMPSE_CHECK(k >= 1 && k <= x.cols()) << "k=" << k << " cols=" << x.cols();
  scaler_.fit(x);
  linalg::Matrix z = scaler_.transform(x);

  std::size_t d = z.cols();
  linalg::Matrix cov(d, d);
  for (std::size_t r = 0; r < z.rows(); ++r)
    for (std::size_t i = 0; i < d; ++i)
      for (std::size_t j = i; j < d; ++j) cov(i, j) += z(r, i) * z(r, j);
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = i; j < d; ++j) {
      cov(i, j) /= static_cast<double>(z.rows());
      cov(j, i) = cov(i, j);
    }

  auto eig = linalg::eigen_symmetric(cov);
  eigenvalues_ = eig.values;
  k_ = k;
  components_ = linalg::Matrix(k, d);
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t i = 0; i < d; ++i) components_(c, i) = eig.vectors(i, c);
}

linalg::Vector Pca::transform(std::span<const double> x) const {
  GLIMPSE_CHECK(k_ > 0) << "Pca::transform before fit";
  return linalg::matvec(components_, scaler_.transform(x));
}

linalg::Vector Pca::inverse_transform(std::span<const double> z) const {
  GLIMPSE_CHECK(z.size() == k_);
  return scaler_.inverse_transform(linalg::matvec_t(components_, z));
}

double Pca::explained_variance_ratio() const {
  double total = 0.0, kept = 0.0;
  for (std::size_t i = 0; i < eigenvalues_.size(); ++i) {
    double v = std::max(0.0, eigenvalues_[i]);
    total += v;
    if (i < k_) kept += v;
  }
  return total > 0.0 ? kept / total : 0.0;
}

double Pca::reconstruction_rmse(const linalg::Matrix& x) const {
  GLIMPSE_CHECK(k_ > 0);
  double se = 0.0;
  std::size_t n = 0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    linalg::Vector z = scaler_.transform(x.row(r));
    linalg::Vector back = linalg::matvec_t(components_, linalg::matvec(components_, z));
    for (std::size_t c = 0; c < z.size(); ++c) {
      double d = z[c] - back[c];
      se += d * d;
      ++n;
    }
  }
  return std::sqrt(se / static_cast<double>(n));
}

void Pca::save(TextWriter& w) const {
  w.tag("pca");
  w.scalar_u(k_);
  scaler_.save(w);
  w.matrix(components_);
  w.vector(eigenvalues_);
}

Pca Pca::load(TextReader& r) {
  r.expect("pca");
  Pca p;
  p.k_ = r.scalar_u();
  p.scaler_ = StandardScaler::load(r);
  p.components_ = r.matrix();
  p.eigenvalues_ = r.vector();
  GLIMPSE_CHECK(p.components_.rows() == p.k_);
  return p;
}

}  // namespace glimpse::ml
