// k-means clustering (k-means++ init, Lloyd iterations).
//
// Used by the Chameleon baseline's adaptive sampling: cluster a candidate
// batch in feature space and measure only the configurations nearest each
// centroid. Its O(n*k*iters) cost is the comparison point for Glimpse's
// O(1) threshold predictors (paper §3.3).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace glimpse::ml {

struct KMeansResult {
  linalg::Matrix centroids;            ///< k x d
  std::vector<std::size_t> assignment; ///< per input row
  std::vector<std::size_t> medoids;    ///< input row nearest each centroid
  double inertia = 0.0;                ///< sum of squared distances
  int iterations = 0;
};

struct KMeansOptions {
  int max_iterations = 25;
  double tol = 1e-6;  ///< relative inertia improvement to keep iterating
};

/// Cluster the rows of `x` into k clusters. k must be in [1, rows].
KMeansResult kmeans(const linalg::Matrix& x, std::size_t k, Rng& rng,
                    KMeansOptions options = {});

}  // namespace glimpse::ml
