#include "ml/scaler.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace glimpse::ml {

void StandardScaler::fit(const linalg::Matrix& x) {
  GLIMPSE_CHECK(x.rows() > 0);
  std::size_t d = x.cols();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < d; ++c) mean_[c] += x(r, c);
  for (double& m : mean_) m /= static_cast<double>(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < d; ++c) {
      double dv = x(r, c) - mean_[c];
      std_[c] += dv * dv;
    }
  for (double& s : std_) {
    s = std::sqrt(s / static_cast<double>(x.rows()));
    if (s < 1e-12) s = 1.0;  // constant column: pass through
  }
}

linalg::Vector StandardScaler::transform(std::span<const double> x) const {
  GLIMPSE_CHECK(fitted() && x.size() == mean_.size());
  linalg::Vector z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = (x[i] - mean_[i]) / std_[i];
  return z;
}

linalg::Matrix StandardScaler::transform(const linalg::Matrix& x) const {
  linalg::Matrix z(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto zr = transform(x.row(r));
    for (std::size_t c = 0; c < x.cols(); ++c) z(r, c) = zr[c];
  }
  return z;
}

linalg::Vector StandardScaler::inverse_transform(std::span<const double> z) const {
  GLIMPSE_CHECK(fitted() && z.size() == mean_.size());
  linalg::Vector x(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) x[i] = z[i] * std_[i] + mean_[i];
  return x;
}

}  // namespace glimpse::ml

namespace glimpse::ml {

void StandardScaler::save(TextWriter& w) const {
  w.tag("scaler");
  w.vector(mean_);
  w.vector(std_);
}

StandardScaler StandardScaler::load(TextReader& r) {
  r.expect("scaler");
  StandardScaler s;
  s.mean_ = r.vector();
  s.std_ = r.vector();
  GLIMPSE_CHECK(s.mean_.size() == s.std_.size());
  return s;
}

}  // namespace glimpse::ml
