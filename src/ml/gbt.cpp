#include "ml/gbt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.hpp"

namespace glimpse::ml {

namespace {

struct BestSplit {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
};

/// SSE reduction of splitting `rows[begin,end)` at (feature, threshold).
BestSplit find_best_split(const linalg::Matrix& x, std::span<const double> y,
                          std::span<const std::size_t> rows, const GbtOptions& options) {
  std::size_t n = rows.size();
  double sum = 0.0;
  for (std::size_t r : rows) sum += y[r];
  double parent_mean = sum / static_cast<double>(n);
  double parent_sse = 0.0;
  for (std::size_t r : rows) {
    double d = y[r] - parent_mean;
    parent_sse += d * d;
  }

  BestSplit best;
  std::vector<double> values(n);
  for (std::size_t f = 0; f < x.cols(); ++f) {
    for (std::size_t i = 0; i < n; ++i) values[i] = x(rows[i], f);
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front() == sorted.back()) continue;  // constant feature here

    // Candidate thresholds at quantiles (midpoints between distinct values).
    int nt = std::min<int>(options.max_thresholds, static_cast<int>(n) - 1);
    for (int t = 1; t <= nt; ++t) {
      std::size_t qi = static_cast<std::size_t>(
          static_cast<double>(t) / (nt + 1) * static_cast<double>(n - 1));
      std::size_t qj = std::min(qi + 1, n - 1);
      if (sorted[qi] == sorted[qj]) continue;
      double thr = 0.5 * (sorted[qi] + sorted[qj]);

      double lsum = 0.0, lsq = 0.0, rsum = 0.0, rsq = 0.0;
      std::size_t ln = 0;
      for (std::size_t i = 0; i < n; ++i) {
        double yy = y[rows[i]];
        if (values[i] <= thr) {
          lsum += yy;
          lsq += yy * yy;
          ++ln;
        } else {
          rsum += yy;
          rsq += yy * yy;
        }
      }
      std::size_t rn = n - ln;
      if (ln < static_cast<std::size_t>(options.min_samples_leaf) ||
          rn < static_cast<std::size_t>(options.min_samples_leaf))
        continue;
      double lsse = lsq - lsum * lsum / static_cast<double>(ln);
      double rsse = rsq - rsum * rsum / static_cast<double>(rn);
      double gain = parent_sse - (lsse + rsse);
      if (gain > best.gain + 1e-12) {
        best = {static_cast<int>(f), thr, gain};
      }
    }
  }
  return best;
}

}  // namespace

int RegressionTree::build(const linalg::Matrix& x, std::span<const double> y,
                          std::vector<std::size_t>& rows, std::size_t begin,
                          std::size_t end, int depth, const GbtOptions& options) {
  std::size_t n = end - begin;
  double mean = 0.0;
  for (std::size_t i = begin; i < end; ++i) mean += y[rows[i]];
  mean /= static_cast<double>(n);

  int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_id].value = mean;

  if (depth >= options.max_depth ||
      n < 2 * static_cast<std::size_t>(options.min_samples_leaf))
    return node_id;

  std::span<const std::size_t> subset(rows.data() + begin, n);
  BestSplit split = find_best_split(x, y, subset, options);
  if (split.feature < 0) return node_id;

  // Partition rows[begin,end) in place.
  auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t r) { return x(r, split.feature) <= split.threshold; });
  std::size_t mid = static_cast<std::size_t>(mid_it - rows.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate partition

  nodes_[node_id].feature = split.feature;
  nodes_[node_id].threshold = split.threshold;
  int left = build(x, y, rows, begin, mid, depth + 1, options);
  int right = build(x, y, rows, mid, end, depth + 1, options);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

void RegressionTree::fit(const linalg::Matrix& x, std::span<const double> y,
                         std::span<const std::size_t> rows, const GbtOptions& options) {
  GLIMPSE_CHECK(!rows.empty());
  nodes_.clear();
  std::vector<std::size_t> mutable_rows(rows.begin(), rows.end());
  build(x, y, mutable_rows, 0, mutable_rows.size(), 0, options);
}

double RegressionTree::predict(std::span<const double> x) const {
  GLIMPSE_CHECK(!nodes_.empty());
  int id = 0;
  while (nodes_[id].feature >= 0) {
    const Node& n = nodes_[id];
    id = (x[static_cast<std::size_t>(n.feature)] <= n.threshold) ? n.left : n.right;
  }
  return nodes_[id].value;
}

void GbtRegressor::fit(const linalg::Matrix& x, std::span<const double> y, Rng& rng) {
  GLIMPSE_CHECK(x.rows() == y.size());
  GLIMPSE_CHECK(x.rows() >= 2) << "GbtRegressor needs at least 2 samples";
  trees_.clear();

  base_ = 0.0;
  for (double v : y) base_ += v;
  base_ /= static_cast<double>(y.size());

  std::vector<double> residual(y.begin(), y.end());
  for (double& r : residual) r -= base_;

  std::size_t n = x.rows();
  std::size_t sub = std::max<std::size_t>(
      2, static_cast<std::size_t>(options_.subsample * static_cast<double>(n)));
  for (int t = 0; t < options_.num_trees; ++t) {
    std::vector<std::size_t> rows = rng.sample_without_replacement(n, sub);
    RegressionTree tree;
    tree.fit(x, residual, rows, options_);
    // Update residuals on all rows.
    for (std::size_t i = 0; i < n; ++i)
      residual[i] -= options_.learning_rate * tree.predict(x.row(i));
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

double GbtRegressor::predict(std::span<const double> x) const {
  GLIMPSE_CHECK(fitted_);
  double p = base_;
  for (const auto& t : trees_) p += options_.learning_rate * t.predict(x);
  return p;
}

linalg::Vector GbtRegressor::predict(const linalg::Matrix& x) const {
  linalg::Vector out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row(r));
  return out;
}

}  // namespace glimpse::ml
