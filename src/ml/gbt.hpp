// Gradient-boosted regression trees (XGBoost-lite).
//
// This is the learned cost model of the AutoTVM baseline (and of Chameleon,
// which builds on it): trees boosted on squared error over config features,
// refit from scratch on all measured data each tuning round — matching
// AutoTVM's usage, at a scale (hundreds of samples, tens of features) where
// an exact reimplementation of XGBoost is unnecessary.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace glimpse::ml {

struct GbtOptions {
  int num_trees = 60;
  int max_depth = 4;
  double learning_rate = 0.25;
  int min_samples_leaf = 4;
  int max_thresholds = 16;  ///< candidate split thresholds per feature (quantiles)
  double subsample = 0.85;  ///< row subsampling per tree
};

/// One regression tree, stored as a flat node array.
class RegressionTree {
 public:
  struct Node {
    int feature = -1;       ///< -1 for leaves
    double threshold = 0.0; ///< go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    double value = 0.0;     ///< leaf prediction
  };

  /// Fit to (x rows, residuals) over the given row subset.
  void fit(const linalg::Matrix& x, std::span<const double> y,
           std::span<const std::size_t> rows, const GbtOptions& options);

  double predict(std::span<const double> x) const;
  std::size_t num_nodes() const { return nodes_.size(); }

 private:
  int build(const linalg::Matrix& x, std::span<const double> y,
            std::vector<std::size_t>& rows, std::size_t begin, std::size_t end,
            int depth, const GbtOptions& options);
  std::vector<Node> nodes_;
};

class GbtRegressor {
 public:
  explicit GbtRegressor(GbtOptions options = {}) : options_(options) {}

  /// Fit from scratch on (x, y). Requires at least 2 rows.
  void fit(const linalg::Matrix& x, std::span<const double> y, Rng& rng);

  double predict(std::span<const double> x) const;
  linalg::Vector predict(const linalg::Matrix& x) const;

  bool fitted() const { return fitted_; }
  std::size_t num_trees() const { return trees_.size(); }

 private:
  GbtOptions options_;
  std::vector<RegressionTree> trees_;
  double base_ = 0.0;
  bool fitted_ = false;
};

}  // namespace glimpse::ml
