#include "ml/autoencoder.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "nn/losses.hpp"

namespace glimpse::ml {

Autoencoder::Autoencoder(const linalg::Matrix& x, std::size_t k, Rng& rng,
                         AutoencoderOptions options)
    : k_(k),
      encoder_({x.cols(), options.hidden, k}, nn::Activation::kTanh, rng),
      decoder_({k, options.hidden, x.cols()}, nn::Activation::kTanh, rng) {
  GLIMPSE_CHECK(x.rows() >= 2 && k >= 1 && k <= x.cols());
  scaler_.fit(x);

  nn::Adam enc_opt(encoder_, {.lr = options.lr});
  nn::Adam dec_opt(decoder_, {.lr = options.lr});
  std::size_t n = x.rows();

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    auto order = rng.sample_without_replacement(n, n);
    nn::MlpParams enc_grad = encoder_.zero_like();
    nn::MlpParams dec_grad = decoder_.zero_like();
    for (std::size_t r : order) {
      linalg::Vector z = scaler_.transform(x.row(r));
      nn::Mlp::Cache enc_cache, dec_cache;
      linalg::Vector code = encoder_.forward(z, enc_cache);
      linalg::Vector out = decoder_.forward(code, dec_cache);
      linalg::Vector dout;
      nn::mse_grad(out, z, dout);
      linalg::Vector dcode;
      dec_grad.axpy(1.0 / static_cast<double>(n),
                    decoder_.backward(code, dec_cache, dout, &dcode));
      enc_grad.axpy(1.0 / static_cast<double>(n),
                    encoder_.backward(z, enc_cache, dcode));
    }
    enc_opt.step(encoder_, enc_grad);
    dec_opt.step(decoder_, dec_grad);
  }
}

linalg::Vector Autoencoder::encode(std::span<const double> x) const {
  return encoder_.forward(scaler_.transform(x));
}

linalg::Vector Autoencoder::decode(std::span<const double> z) const {
  return scaler_.inverse_transform(decoder_.forward(z));
}

double Autoencoder::reconstruction_rmse(const linalg::Matrix& x) const {
  double se = 0.0;
  std::size_t n = 0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    linalg::Vector z = scaler_.transform(x.row(r));
    linalg::Vector back = decoder_.forward(encoder_.forward(z));
    for (std::size_t c = 0; c < z.size(); ++c) {
      double d = z[c] - back[c];
      se += d * d;
      ++n;
    }
  }
  return std::sqrt(se / static_cast<double>(n));
}

std::size_t Autoencoder::num_params() const {
  return encoder_.params().num_params() + decoder_.params().num_params();
}

}  // namespace glimpse::ml
