// Neural autoencoder for dimensionality reduction — the alternative the
// paper's Blueprint design *rejects* in favor of PCA (§3.1: PCA "provides an
// intuitive knob that allows us to balance the size with the information
// loss", while "neural networks required more computation to achieve the
// same dimensionality reduction"). Implemented so the claim can be measured:
// bench/fig8_blueprint_dse compares reconstruction loss and fitting cost of
// both at equal embedding sizes.
#pragma once

#include "ml/scaler.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"

namespace glimpse::ml {

struct AutoencoderOptions {
  std::size_t hidden = 16;  ///< hidden width of encoder and decoder
  int epochs = 400;
  double lr = 4e-3;
};

/// Symmetric MLP autoencoder (d -> hidden -> k -> hidden -> d) trained with
/// MSE on standardized inputs; exposes the same encode/decode surface as
/// the PCA-based Blueprint for apples-to-apples comparison.
class Autoencoder {
 public:
  /// Fit on the rows of `x`, compressing to `k` dimensions.
  Autoencoder(const linalg::Matrix& x, std::size_t k, Rng& rng,
              AutoencoderOptions options = {});

  linalg::Vector encode(std::span<const double> x) const;
  linalg::Vector decode(std::span<const double> z) const;

  std::size_t bottleneck_dim() const { return k_; }
  /// Reconstruction RMSE on `x` in standardized units — directly comparable
  /// with Pca::reconstruction_rmse.
  double reconstruction_rmse(const linalg::Matrix& x) const;
  /// Trainable parameters (the "more computation" side of the trade-off).
  std::size_t num_params() const;

 private:
  std::size_t k_;
  StandardScaler scaler_;
  nn::Mlp encoder_;
  nn::Mlp decoder_;
};

}  // namespace glimpse::ml
