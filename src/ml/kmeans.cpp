#include "ml/kmeans.hpp"

#include <cmath>
#include <limits>

#include "common/logging.hpp"

namespace glimpse::ml {

KMeansResult kmeans(const linalg::Matrix& x, std::size_t k, Rng& rng,
                    KMeansOptions options) {
  std::size_t n = x.rows(), d = x.cols();
  GLIMPSE_CHECK(k >= 1 && k <= n) << "kmeans: k=" << k << " n=" << n;

  // k-means++ seeding.
  linalg::Matrix centroids(k, d);
  std::vector<double> min_sq(n, std::numeric_limits<double>::max());
  std::size_t first = rng.index(n);
  for (std::size_t c = 0; c < d; ++c) centroids(0, c) = x(first, c);
  for (std::size_t j = 1; j < k; ++j) {
    for (std::size_t i = 0; i < n; ++i)
      min_sq[i] = std::min(min_sq[i], linalg::sqdist(x.row(i), centroids.row(j - 1)));
    std::size_t pick = rng.weighted_index(min_sq);
    for (std::size_t c = 0; c < d; ++c) centroids(j, c) = x(pick, c);
  }

  KMeansResult result;
  result.assignment.assign(n, 0);
  double prev_inertia = std::numeric_limits<double>::max();

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assign.
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      std::size_t bj = 0;
      for (std::size_t j = 0; j < k; ++j) {
        double sq = linalg::sqdist(x.row(i), centroids.row(j));
        if (sq < best) {
          best = sq;
          bj = j;
        }
      }
      result.assignment[i] = bj;
      inertia += best;
    }
    result.inertia = inertia;

    // Update.
    linalg::Matrix sums(k, d);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t j = result.assignment[i];
      ++counts[j];
      auto row = x.row(i);
      for (std::size_t c = 0; c < d; ++c) sums(j, c) += row[c];
    }
    for (std::size_t j = 0; j < k; ++j) {
      if (counts[j] == 0) {
        // Re-seed an empty cluster at a random point.
        std::size_t pick = rng.index(n);
        for (std::size_t c = 0; c < d; ++c) centroids(j, c) = x(pick, c);
        continue;
      }
      for (std::size_t c = 0; c < d; ++c)
        centroids(j, c) = sums(j, c) / static_cast<double>(counts[j]);
    }

    if (prev_inertia - inertia <= options.tol * std::max(1.0, prev_inertia)) break;
    prev_inertia = inertia;
  }
  result.centroids = centroids;

  // Medoids: input row nearest each centroid.
  result.medoids.assign(k, 0);
  for (std::size_t j = 0; j < k; ++j) {
    double best = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < n; ++i) {
      double sq = linalg::sqdist(x.row(i), result.centroids.row(j));
      if (sq < best) {
        best = sq;
        result.medoids[j] = i;
      }
    }
  }
  return result;
}

}  // namespace glimpse::ml
