// Principal Component Analysis via eigendecomposition of the covariance
// matrix. The paper's Blueprint uses PCA (over a neural autoencoder) for its
// "intuitive knob" trading embedding size against information loss (§3.1).
#pragma once

#include <span>

#include "linalg/decompositions.hpp"
#include "ml/scaler.hpp"

namespace glimpse::ml {

class Pca {
 public:
  /// Fit on rows of `x`, standardizing columns first, keeping `k` components
  /// (k <= min(rows, cols)).
  void fit(const linalg::Matrix& x, std::size_t k);

  std::size_t num_components() const { return components_.rows(); }
  std::size_t input_dim() const { return components_.cols(); }

  /// Project one standardized-inverse row into the k-dim embedding.
  linalg::Vector transform(std::span<const double> x) const;
  /// Reconstruct back to the original feature space.
  linalg::Vector inverse_transform(std::span<const double> z) const;

  /// Fraction of total variance captured by the kept components, in [0,1].
  double explained_variance_ratio() const;

  /// Reconstruction RMSE over the rows of `x` *in standardized units* —
  /// the "information loss" metric of the paper's Fig. 8.
  double reconstruction_rmse(const linalg::Matrix& x) const;

  const linalg::Vector& eigenvalues() const { return eigenvalues_; }

  void save(TextWriter& w) const;
  static Pca load(TextReader& r);

 private:
  StandardScaler scaler_;
  linalg::Matrix components_;  ///< k x d, rows are principal axes
  linalg::Vector eigenvalues_; ///< all d eigenvalues, descending
  std::size_t k_ = 0;
};

}  // namespace glimpse::ml
