// Feature standardization (z-score), fit on a sample matrix.
#pragma once

#include <span>

#include "common/serialize.hpp"
#include "linalg/matrix.hpp"

namespace glimpse::ml {

class StandardScaler {
 public:
  StandardScaler() = default;

  /// Fit mean/std per column. Constant columns get std 1 (pass-through).
  void fit(const linalg::Matrix& x);

  linalg::Vector transform(std::span<const double> x) const;
  linalg::Matrix transform(const linalg::Matrix& x) const;
  linalg::Vector inverse_transform(std::span<const double> z) const;

  void save(TextWriter& w) const;
  static StandardScaler load(TextReader& r);

  bool fitted() const { return !mean_.empty(); }
  const linalg::Vector& mean() const { return mean_; }
  const linalg::Vector& std() const { return std_; }

 private:
  linalg::Vector mean_;
  linalg::Vector std_;
};

}  // namespace glimpse::ml
