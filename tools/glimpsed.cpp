// glimpsed: the long-running tuning daemon.
//
// Accepts tuning jobs over the line-delimited JSON protocol
// (src/service/protocol.hpp) on a Unix-domain socket and/or a loopback TCP
// port, runs them on the shared multi-task scheduler slot pool, and spools
// every accepted job to disk so a crashed daemon resumes — and completes —
// all in-flight work on restart.
//
//   glimpsed --unix /tmp/glimpsed.sock --spool /var/tmp/glimpse-spool
//   glimpsed --tcp 7979 --slots 8 --cache mem
//
// Flags:
//   --unix PATH        listen on a Unix-domain socket (default when neither
//                      listener is given: ./glimpsed.sock)
//   --tcp PORT         listen on 127.0.0.1:PORT (0 = ephemeral; the chosen
//                      port is printed on the ready line)
//   --spool DIR        crash-safe spool directory (specs, checkpoints,
//                      results); omit to run without persistence
//   --spool-retain N   settled jobs kept in the spool across restarts;
//                      older settled entries are garbage-collected at
//                      startup (default 256, 0 = keep everything)
//   --slots N          concurrent measurer slots (default:
//                      GLIMPSE_SCHED_SLOTS, else 4)
//   --cache MODE       result cache: "off", "mem", or a file path
//                      (default: GLIMPSE_RESULT_CACHE, else off)
//   --max-queue N      admission bound on queued jobs (default 64)
//   --max-per-client N per-client admission bound (default 0 = none)
//
// Fleet flags (multi-daemon deployments behind a ShardRing / glimpse-router):
//   --shard-name NAME  this daemon's identity on the consistent-hash ring;
//                      required with --cache-shared
//   --cache-shared DIR shared result-cache directory: this shard appends to
//                      DIR/tier-NAME.jsonl and merges every peer tier, so a
//                      hit on any shard eventually serves all shards
//                      (overrides --cache)
//   --auth TOKEN       shared-secret: refuse any request whose "auth" field
//                      does not match (default: GLIMPSE_AUTH, else open)
//   --tcp-any          bind --tcp on 0.0.0.0 instead of loopback; refused
//                      unless an auth token is set
//   --quota-gpu-s S    per-client simulated-GPU-seconds budget; submissions
//                      beyond it are rejected (0 = unlimited)
//   --warmstart        seed autotvm/chameleon jobs from the shared cache
//                      tiers (donor entries for the same task, weighted by
//                      Blueprint distance) before their first proposal;
//                      clients can opt a job out at submit time
//   --warmstart-predictor PATH
//                      learned config predictor (train with
//                      glimpse_warmstart) blended into the warm-start
//                      ranking; implies --warmstart
//
// On successful startup one ready line is printed to stdout:
//   glimpsed ready unix=<path|-> tcp=<port|-> spool=<dir|-> resumed=<n>
// Tests and wrappers block on that line before connecting. SIGINT/SIGTERM
// and the protocol `shutdown` request both stop the daemon gracefully
// (running jobs stay checkpointed in the spool).
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include <unistd.h>

#include "common/telemetry/export.hpp"
#include "service/server.hpp"
#include "service/session_manager.hpp"
#include "tuning/scheduler.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  char b = 's';
  ssize_t ignored = ::write(g_signal_pipe[1], &b, 1);
  (void)ignored;
}

[[noreturn]] void usage(const char* argv0, const std::string& error = "") {
  if (!error.empty()) std::cerr << "glimpsed: " << error << "\n";
  std::cerr << "usage: " << argv0
            << " [--unix PATH] [--tcp PORT] [--spool DIR] [--spool-retain N]"
               " [--slots N] [--cache off|mem|PATH] [--max-queue N]"
               " [--max-per-client N] [--shard-name NAME] [--cache-shared DIR]"
               " [--auth TOKEN] [--tcp-any] [--quota-gpu-s S] [--warmstart]"
               " [--warmstart-predictor PATH]\n";
  std::exit(error.empty() ? 0 : 2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace glimpse;
  telemetry::set_process_label("glimpsed");

  service::SessionManagerOptions mopts;
  mopts.slots = tuning::scheduler_slots_from_env(4);
  if (const char* env = std::getenv("GLIMPSE_RESULT_CACHE"))
    mopts.cache = env;
  service::ServerOptions sopts;
  if (const char* env = std::getenv("GLIMPSE_AUTH")) sopts.auth_token = env;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--unix") {
      sopts.unix_path = next();
    } else if (arg == "--tcp") {
      sopts.tcp_port = std::atoi(next().c_str());
    } else if (arg == "--spool") {
      mopts.spool_dir = next();
    } else if (arg == "--spool-retain") {
      int v = std::atoi(next().c_str());
      if (v < 0) usage(argv[0], "--spool-retain must be >= 0");
      mopts.spool_retain = static_cast<std::size_t>(v);
    } else if (arg == "--slots") {
      mopts.slots = static_cast<std::size_t>(std::atoi(next().c_str()));
      if (mopts.slots < 1) usage(argv[0], "--slots must be >= 1");
    } else if (arg == "--cache") {
      const std::string v = next();
      mopts.cache = (v == "off") ? "" : v;
    } else if (arg == "--max-queue") {
      int v = std::atoi(next().c_str());
      if (v < 1) usage(argv[0], "--max-queue must be >= 1");
      mopts.queue.max_depth = static_cast<std::size_t>(v);
    } else if (arg == "--max-per-client") {
      int v = std::atoi(next().c_str());
      if (v < 0) usage(argv[0], "--max-per-client must be >= 0");
      mopts.queue.max_per_client = static_cast<std::size_t>(v);
    } else if (arg == "--shard-name") {
      mopts.shard_name = next();
    } else if (arg == "--cache-shared") {
      mopts.cache_shared_dir = next();
    } else if (arg == "--auth") {
      sopts.auth_token = next();
      if (sopts.auth_token.empty()) usage(argv[0], "--auth token is empty");
    } else if (arg == "--tcp-any") {
      sopts.tcp_bind_any = true;
    } else if (arg == "--quota-gpu-s") {
      mopts.quota_gpu_s = std::atof(next().c_str());
      if (mopts.quota_gpu_s < 0.0) usage(argv[0], "--quota-gpu-s must be >= 0");
    } else if (arg == "--warmstart") {
      mopts.warmstart = true;
    } else if (arg == "--warmstart-predictor") {
      mopts.warmstart_predictor = next();
      mopts.warmstart = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      usage(argv[0], "unknown flag " + arg);
    }
  }
  if (sopts.unix_path.empty() && sopts.tcp_port < 0)
    sopts.unix_path = "glimpsed.sock";
  if (!mopts.cache_shared_dir.empty() && mopts.shard_name.empty())
    usage(argv[0], "--cache-shared requires --shard-name");

  try {
    service::SessionManager manager(mopts);
    service::Server server(manager, sopts);
    server.start();

    if (::pipe(g_signal_pipe) != 0) {
      std::cerr << "glimpsed: pipe failed\n";
      return 1;
    }
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::thread signal_thread([&server] {
      char b;
      if (::read(g_signal_pipe[0], &b, 1) > 0) server.stop();
    });

    std::cout << "glimpsed ready unix="
              << (sopts.unix_path.empty() ? "-" : sopts.unix_path)
              << " tcp=" << server.tcp_port() << " spool="
              << (mopts.spool_dir.empty() ? "-" : mopts.spool_dir)
              << " resumed=" << manager.recovered()
              << " shard=" << (mopts.shard_name.empty() ? "-" : mopts.shard_name)
              << std::endl;

    server.wait_shutdown();
    server.stop();
    // Unblock the signal thread if no signal ever arrived.
    char b = 'q';
    ssize_t ignored = ::write(g_signal_pipe[1], &b, 1);
    (void)ignored;
    signal_thread.join();
    // Graceful shutdown is a quiescent point: every connection thread and
    // the worker have joined, so the span buffers are safe to flush.
    for (const std::string& path : telemetry::export_to_env_paths())
      std::cerr << "glimpsed: telemetry written to " << path << "\n";
  } catch (const std::exception& e) {
    std::cerr << "glimpsed: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
