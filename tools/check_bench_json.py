#!/usr/bin/env python3
"""Validate the repo's machine-readable outputs.

Checks three file shapes, selected by content sniffing (or forced with
--kind):

  * bench      -- BENCH_*.json from bench/micro_parallel.cpp:
                  {"threads_serial", "threads_parallel", "paths": [
                    {"name", "serial_ms", "parallel_ms", "speedup"}, ...]}
  * trace      -- Chrome trace-event JSON written via GLIMPSE_TRACE:
                  {"traceEvents": [{"name", "ph", "ts", ...}, ...]};
                  "X" (complete) events must also carry "dur". A
                  GLIMPSE_TRACE path ending in .jsonl instead holds JSONL
                  segments ("trace_meta" metadata line, then one event
                  object per line) — both shapes validate under this kind,
                  including distributed-trace id formats (trace_id 32 hex,
                  span ids 16 hex) when present.
  * metrics    -- JSONL written via GLIMPSE_METRICS: one object per line,
                  each with "name" and "type" (counter | gauge | histogram);
                  histograms carry count/sum/min/max/p50/p90/p99/buckets.
  * faults     -- BENCH_faults.json from bench/micro_faults.cpp:
                  {"max_trials", "batch_size", "fault_paths": [
                    {"name", "p_transient", "trials", "faulted", ...}, ...]}
  * journal    -- <checkpoint>.journal.jsonl written by the session's
                  crash-safety layer: one trial object per line with
                  "step", "config", "valid", "error", "attempts", ...;
                  steps must be consecutive from 0.
  * cache      -- BENCH_cache.json from bench/micro_cache.cpp:
                  {"max_trials", "batch_size", "repeats", "sweeps": [
                    {"name", "tuner", "measurements_no_cache",
                     "measurements_cache", "reduction",
                     "traces_identical", ...}, ...]}
  * service    -- BENCH_service.json from bench/micro_service.cpp:
                  {"slots", "max_trials", "batch_size", "scenarios": [
                    {"name", "clients", "submitted", "accepted",
                     "rejected", "completed", "cancelled",
                     "results_identical", ...}, ...]};
                  admission must account exactly (accepted + rejected ==
                  submitted, completed + cancelled <= accepted)
  * warmstart  -- BENCH_warmstart.json from bench/micro_warmstart.cpp:
                  {"donor_trials", "max_trials", "batch_size", "top_k",
                   "arms": [{"name", "warm_seeds", "donor_entries",
                    "donor_devices", "cold_best_gflops", "warm_best_gflops",
                    "parity_gflops", "cold_invocations", "warm_invocations",
                    "reduction", "quality_held", "decisions_identical",
                    ...}, ...]};
                  reduction must be consistent with the invocation counts
  * scenarios  -- BENCH_scenarios.json from bench/micro_scenarios.cpp:
                  {"max_trials", "batch_size", "scenario_sweeps": [
                    {"kind", "task", "distinct_best_configs", "cells": [
                      {"gpu", "tensor_cores", "best_gflops", "best_config",
                       "tc_selected", "valid_frac", "decisions_identical",
                       ...}, ...]}, ...], "acceptance": {...}};
                  tc_selected must be false wherever tensor_cores == 0
  * fleet      -- BENCH_fleet.json from bench/micro_fleet.cpp:
                  {"hardware_concurrency", "jobs", "max_trials",
                   "points": [{"daemons", "wall_ms", "jobs_per_s",
                    "completed", "cache_hits", "per_shard": [...]}, ...],
                   "scaling_4v1", "decisions_identical"};
                  every point must complete every job, per-shard counts
                  must sum to the point totals, and decisions_identical
                  must be true (sharding must never change results)

With --check-speedup, bench files are additionally gated against per-path
parallel speedup floors (the perf regression gate for the thread-pool /
SIMD layer). Thresholds assume >= 4 worker threads; when the machine
cannot express that parallelism (hardware_concurrency < threads_parallel,
or fewer than 4 parallel threads), the gate skips with a warning instead
of failing, so laptops and 1-core CI shells don't produce false alarms.

With --check-fleet-scaling, fleet files are gated against the aggregate
jobs/sec scaling floor at the largest shard count (scaling_4v1 >= 3.0).
Like the speedup gate it skips, with a warning, on machines with fewer
cores than the largest shard count — the bit-identity requirement is
still enforced unconditionally by the plain fleet validation.

With --check-warmstart, warmstart files are gated per arm: warm-start
must reach the cold run's converged quality (quality_held) with at least
50 % fewer measurer invocations (reduction >= 2.0), and the warm run's
decisions must be bit-identical across thread counts. This gate never
skips — the measurer is simulated, so the numbers do not depend on host
hardware.

With --check-scenarios, scenario files are gated: per template kind the
tuned optimum must differ on at least 3 Blueprints (hardware moves the
optimum), the tensor-core template option must win on at least one
tensor-core Blueprint and must never be selected on silicon without
tensor cores, and every cell's decisions must be bit-identical across
thread counts. This gate never skips — the measurer is simulated, so
the numbers do not depend on host hardware.

Usage:
  tools/check_bench_json.py FILE [FILE ...]
  tools/check_bench_json.py --check-speedup BENCH_parallel.json
  tools/check_bench_json.py --check-fleet-scaling BENCH_fleet.json
  tools/check_bench_json.py --check-warmstart BENCH_warmstart.json
  tools/check_bench_json.py --check-scenarios BENCH_scenarios.json
  tools/check_bench_json.py --selftest

Standard library only; exit status 0 iff every file validates.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

NUMBER = (int, float)


class ValidationError(Exception):
    pass


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ValidationError(msg)


def _require_keys(obj: dict, keys: dict, where: str) -> None:
    """keys maps name -> required type (or tuple of types)."""
    _require(isinstance(obj, dict), f"{where}: expected an object")
    for name, types in keys.items():
        _require(name in obj, f"{where}: missing key '{name}'")
        _require(
            isinstance(obj[name], types) and not isinstance(obj[name], bool),
            f"{where}: key '{name}' has wrong type "
            f"({type(obj[name]).__name__})",
        )


# ---- validators -------------------------------------------------------------


def check_bench(doc: object, name: str) -> int:
    _require_keys(doc, {"threads_serial": int, "threads_parallel": int,
                        "paths": list}, name)
    _require(doc["threads_serial"] >= 1, f"{name}: threads_serial < 1")
    _require(doc["threads_parallel"] >= 1, f"{name}: threads_parallel < 1")
    _require(len(doc["paths"]) > 0, f"{name}: empty paths list")
    for i, p in enumerate(doc["paths"]):
        where = f"{name}: paths[{i}]"
        _require_keys(p, {"name": str, "serial_ms": NUMBER,
                          "parallel_ms": NUMBER}, where)
        _require(p["serial_ms"] >= 0, f"{where}: negative serial_ms")
        _require(p["parallel_ms"] >= 0, f"{where}: negative parallel_ms")
    return len(doc["paths"])


# Parallel speedup floors enforced by --check-speedup, keyed by path name.
# Calibrated for a 4-thread run of bench/micro_parallel on a >= 4-core
# machine: the SIMD'd row-parallel matmul must beat 3x, and the end-to-end
# figure-grid fan-out (which also contains serial per-cell work) must beat
# 1.5x. Raise these only with bench numbers in hand.
SPEEDUP_THRESHOLDS = {
    "linalg_matmul": 3.0,
    "fig6_grid": 1.5,
}
GATE_MIN_THREADS = 4


def check_speedup(doc: object, name: str,
                  thresholds: dict[str, float] | None = None) -> str:
    """Gate a validated bench doc against per-path speedup floors.

    Returns a human-readable summary; raises ValidationError on regression.
    """
    if thresholds is None:
        thresholds = SPEEDUP_THRESHOLDS
    check_bench(doc, name)
    tp = doc["threads_parallel"]
    hc = doc.get("hardware_concurrency")
    if hc is not None:
        _require(isinstance(hc, int) and not isinstance(hc, bool) and hc >= 0,
                 f"{name}: hardware_concurrency must be a non-negative int")
    if tp < GATE_MIN_THREADS:
        return (f"speedup gate SKIPPED: only {tp} parallel thread(s), "
                f"thresholds assume >= {GATE_MIN_THREADS}")
    if isinstance(hc, int) and 0 < hc < tp:
        return (f"speedup gate SKIPPED: hardware_concurrency {hc} < "
                f"threads_parallel {tp}; machine cannot express the "
                f"parallelism being gated")
    by_name = {p["name"]: p for p in doc["paths"]}
    parts = []
    for pname in sorted(thresholds):
        floor = thresholds[pname]
        _require(pname in by_name,
                 f"{name}: gated path '{pname}' missing from paths")
        p = by_name[pname]
        speedup = p["serial_ms"] / max(1e-9, p["parallel_ms"])
        _require(speedup >= floor,
                 f"{name}: path '{pname}' speedup {speedup:.2f}x is below "
                 f"the {floor:.2f}x floor at {tp} threads (perf regression)")
        parts.append(f"{pname} {speedup:.2f}x >= {floor:.2f}x")
    return "speedup gate passed: " + ", ".join(parts)


def check_faults(doc: object, name: str) -> int:
    _require_keys(doc, {"max_trials": int, "batch_size": int,
                        "fault_paths": list}, name)
    _require(len(doc["fault_paths"]) > 0, f"{name}: empty fault_paths list")
    for i, p in enumerate(doc["fault_paths"]):
        where = f"{name}: fault_paths[{i}]"
        _require_keys(p, {"name": str, "p_transient": NUMBER, "trials": int,
                          "faulted": int, "recovered": int,
                          "injected_failures": int, "best_gflops": NUMBER,
                          "gpu_seconds": NUMBER, "wall_ms": NUMBER}, where)
        for key in ("checkpointed", "resume_bit_identical"):
            _require(isinstance(p.get(key), bool),
                     f"{where}: key '{key}' must be a boolean")
        _require(0.0 <= p["p_transient"] <= 1.0,
                 f"{where}: p_transient outside [0, 1]")
        _require(p["faulted"] <= p["trials"],
                 f"{where}: more faulted trials than trials")
        _require(p["recovered"] <= p["trials"],
                 f"{where}: more recovered trials than trials")
        _require(p["injected_failures"] >= p["faulted"],
                 f"{where}: fewer injected failures than faulted trials")
        _require(p["best_gflops"] >= 0, f"{where}: negative best_gflops")
        _require(p["gpu_seconds"] >= 0, f"{where}: negative gpu_seconds")
        _require(p["wall_ms"] >= 0, f"{where}: negative wall_ms")
    return len(doc["fault_paths"])


def check_cache(doc: object, name: str) -> int:
    _require_keys(doc, {"max_trials": int, "batch_size": int, "repeats": int,
                        "sweeps": list}, name)
    _require(doc["repeats"] >= 1, f"{name}: repeats < 1")
    _require(len(doc["sweeps"]) > 0, f"{name}: empty sweeps list")
    for i, s in enumerate(doc["sweeps"]):
        where = f"{name}: sweeps[{i}]"
        _require_keys(s, {"name": str, "tuner": str, "repeats": int,
                          "trials_total": int, "measurements_no_cache": int,
                          "measurements_cache": int, "reduction": NUMBER,
                          "cache_hits": int, "wall_ms": NUMBER}, where)
        _require(isinstance(s.get("traces_identical"), bool),
                 f"{where}: key 'traces_identical' must be a boolean")
        _require(s["measurements_no_cache"] >= 0,
                 f"{where}: negative measurements_no_cache")
        _require(s["measurements_cache"] >= 0,
                 f"{where}: negative measurements_cache")
        _require(s["measurements_cache"] <= s["measurements_no_cache"],
                 f"{where}: the cache arm measured more than the baseline")
        _require(s["reduction"] >= 0, f"{where}: negative reduction")
        _require(s["wall_ms"] >= 0, f"{where}: negative wall_ms")
        if s["measurements_cache"] > 0:
            ratio = s["measurements_no_cache"] / s["measurements_cache"]
            _require(abs(s["reduction"] - ratio) <= 0.05 * max(1.0, ratio),
                     f"{where}: reduction {s['reduction']} inconsistent with "
                     f"measurement counts (expected ~{ratio:.2f})")
    return len(doc["sweeps"])


def check_service(doc: object, name: str) -> int:
    _require_keys(doc, {"slots": int, "max_trials": int, "batch_size": int,
                        "scenarios": list}, name)
    _require(doc["slots"] >= 1, f"{name}: slots < 1")
    _require(len(doc["scenarios"]) > 0, f"{name}: empty scenarios list")
    for i, s in enumerate(doc["scenarios"]):
        where = f"{name}: scenarios[{i}]"
        _require_keys(s, {"name": str, "clients": int, "submitted": int,
                          "accepted": int, "rejected": int, "completed": int,
                          "cancelled": int, "trials_total": int,
                          "cache_hits": int, "wall_ms": NUMBER}, where)
        _require(isinstance(s.get("results_identical"), bool),
                 f"{where}: key 'results_identical' must be a boolean")
        _require(s["clients"] >= 1, f"{where}: clients < 1")
        _require(s["accepted"] + s["rejected"] == s["submitted"],
                 f"{where}: accepted + rejected != submitted "
                 f"(admission must account for every request)")
        _require(s["completed"] + s["cancelled"] <= s["accepted"],
                 f"{where}: more settled jobs than accepted")
        _require(s["cache_hits"] >= 0, f"{where}: negative cache_hits")
        _require(s["wall_ms"] >= 0, f"{where}: negative wall_ms")
    if "tracing_overhead" in doc:
        where = f"{name}: tracing_overhead"
        t = doc["tracing_overhead"]
        _require_keys(t, {"requests": int, "off_us_per_req": NUMBER,
                          "on_us_per_req": NUMBER,
                          "overhead_us_per_req": NUMBER,
                          "traced_spans": int}, where)
        _require(t["requests"] >= 1, f"{where}: requests < 1")
        _require(t["off_us_per_req"] >= 0, f"{where}: negative off latency")
        _require(t["on_us_per_req"] >= 0, f"{where}: negative on latency")
        # overhead_us_per_req may dip below zero on a noisy host; no check.
        _require(t["traced_spans"] >= 0, f"{where}: negative traced_spans")
    return len(doc["scenarios"])


def check_fleet(doc: object, name: str) -> int:
    _require_keys(doc, {"hardware_concurrency": int, "jobs": int,
                        "max_trials": int, "points": list,
                        "scaling_4v1": NUMBER}, name)
    _require(doc["hardware_concurrency"] >= 0,
             f"{name}: negative hardware_concurrency")
    _require(doc["jobs"] >= 1, f"{name}: jobs < 1")
    _require(doc["scaling_4v1"] >= 0, f"{name}: negative scaling_4v1")
    _require(isinstance(doc.get("decisions_identical"), bool),
             f"{name}: key 'decisions_identical' must be a boolean")
    _require(doc["decisions_identical"],
             f"{name}: decisions_identical is false — sharding changed "
             f"tuning results (this is a correctness bug, never skipped)")
    _require(len(doc["points"]) > 0, f"{name}: empty points list")
    prev_daemons = 0
    for i, p in enumerate(doc["points"]):
        where = f"{name}: points[{i}]"
        _require_keys(p, {"daemons": int, "wall_ms": NUMBER,
                          "jobs_per_s": NUMBER, "completed": int,
                          "cache_hits": int, "per_shard": list}, where)
        _require(p["daemons"] > prev_daemons,
                 f"{where}: daemons must be strictly increasing")
        prev_daemons = p["daemons"]
        _require(p["wall_ms"] >= 0, f"{where}: negative wall_ms")
        _require(p["jobs_per_s"] >= 0, f"{where}: negative jobs_per_s")
        _require(p["completed"] == doc["jobs"],
                 f"{where}: completed {p['completed']} != jobs "
                 f"{doc['jobs']} (every point must settle every job)")
        _require(len(p["per_shard"]) == p["daemons"],
                 f"{where}: per_shard has {len(p['per_shard'])} entries "
                 f"for {p['daemons']} daemon(s)")
        completed_sum = 0
        hits_sum = 0
        for j, s in enumerate(p["per_shard"]):
            swhere = f"{where}: per_shard[{j}]"
            _require_keys(s, {"shard": str, "completed": int,
                              "cache_hits": int}, swhere)
            completed_sum += s["completed"]
            hits_sum += s["cache_hits"]
        _require(completed_sum == p["completed"],
                 f"{where}: per-shard completed sums to {completed_sum}, "
                 f"point says {p['completed']}")
        _require(hits_sum == p["cache_hits"],
                 f"{where}: per-shard cache_hits sums to {hits_sum}, "
                 f"point says {p['cache_hits']}")
    return len(doc["points"])


# Aggregate jobs/sec scaling floor at the largest shard count, enforced by
# --check-fleet-scaling on hosts with at least that many cores. Cache-warm
# serving is almost pure orchestration, so 4 shards should deliver close
# to 4x one shard; 3.0 leaves room for protocol and scheduler overhead.
FLEET_SCALING_FLOOR = 3.0


def check_fleet_scaling(doc: object, name: str,
                        floor: float = FLEET_SCALING_FLOOR) -> str:
    """Gate a validated fleet doc against the 4-vs-1 scaling floor.

    Returns a human-readable summary; raises ValidationError on regression.
    """
    check_fleet(doc, name)
    hc = doc["hardware_concurrency"]
    max_daemons = max(p["daemons"] for p in doc["points"])
    if 0 < hc < max_daemons:
        return (f"fleet scaling gate SKIPPED: hardware_concurrency {hc} < "
                f"{max_daemons} daemon(s); machine cannot express the "
                f"parallelism being gated")
    scaling = doc["scaling_4v1"]
    _require(scaling >= floor,
             f"{name}: scaling_4v1 {scaling:.2f}x is below the "
             f"{floor:.2f}x floor at {max_daemons} daemons on {hc} cores "
             f"(fleet scaling regression)")
    return (f"fleet scaling gate passed: {scaling:.2f}x >= {floor:.2f}x "
            f"at {max_daemons} daemons")


def check_warmstart(doc: object, name: str) -> int:
    _require_keys(doc, {"donor_trials": int, "max_trials": int,
                        "batch_size": int, "top_k": int, "arms": list}, name)
    _require(doc["donor_trials"] >= 1, f"{name}: donor_trials < 1")
    _require(doc["max_trials"] >= 1, f"{name}: max_trials < 1")
    _require(doc["top_k"] >= 1, f"{name}: top_k < 1")
    _require(len(doc["arms"]) > 0, f"{name}: empty arms list")
    for i, a in enumerate(doc["arms"]):
        where = f"{name}: arms[{i}]"
        _require_keys(a, {"name": str, "warm_seeds": int,
                          "donor_entries": int, "donor_devices": int,
                          "cold_best_gflops": NUMBER,
                          "warm_best_gflops": NUMBER,
                          "parity_gflops": NUMBER, "cold_invocations": int,
                          "warm_invocations": int, "reduction": NUMBER,
                          "wall_ms": NUMBER}, where)
        for key in ("quality_held", "decisions_identical"):
            _require(isinstance(a.get(key), bool),
                     f"{where}: key '{key}' must be a boolean")
        _require(a["warm_seeds"] <= doc["top_k"],
                 f"{where}: more warm seeds than top_k")
        _require(a["donor_devices"] <= a["donor_entries"],
                 f"{where}: more donor devices than donor entries")
        _require(a["cold_best_gflops"] >= 0,
                 f"{where}: negative cold_best_gflops")
        _require(a["warm_best_gflops"] >= 0,
                 f"{where}: negative warm_best_gflops")
        _require(a["parity_gflops"] <= a["cold_best_gflops"],
                 f"{where}: parity bar above the cold run's best")
        _require(a["cold_invocations"] <= doc["max_trials"],
                 f"{where}: cold_invocations above the trial budget")
        _require(a["warm_invocations"] <= doc["max_trials"],
                 f"{where}: warm_invocations above the trial budget")
        _require(a["wall_ms"] >= 0, f"{where}: negative wall_ms")
        if a["warm_invocations"] > 0:
            ratio = a["cold_invocations"] / a["warm_invocations"]
            _require(abs(a["reduction"] - ratio) <= 0.05 * max(1.0, ratio),
                     f"{where}: reduction {a['reduction']} inconsistent with "
                     f"invocation counts (expected ~{ratio:.2f})")
        else:
            _require(a["reduction"] == 0,
                     f"{where}: nonzero reduction but the warm run never "
                     f"reached parity")
    return len(doc["arms"])


# Per-arm invocation-reduction floor enforced by --check-warmstart: seeding
# from donor tiers must at least halve the trials needed to reach the cold
# search's converged quality ("50 % fewer measurer invocations to the same
# best-cost"). Never skipped: the measurer is simulated, so the curve is a
# property of the algorithm, not of the host.
WARMSTART_REDUCTION_FLOOR = 2.0


def check_warmstart_gate(doc: object, name: str,
                         floor: float = WARMSTART_REDUCTION_FLOOR) -> str:
    """Gate a validated warmstart doc: every arm must hold quality, stay
    deterministic across thread counts, and beat the reduction floor.

    Returns a human-readable summary; raises ValidationError on regression.
    """
    check_warmstart(doc, name)
    parts = []
    for i, a in enumerate(doc["arms"]):
        where = f"{name}: arms[{i}] ('{a['name']}')"
        _require(a["decisions_identical"],
                 f"{where}: warm-start decisions differ across thread "
                 f"counts (this is a correctness bug, never skipped)")
        _require(a["quality_held"],
                 f"{where}: warm run's final best {a['warm_best_gflops']} "
                 f"fell short of the {a['parity_gflops']} parity bar")
        _require(a["warm_invocations"] > 0,
                 f"{where}: warm run never reached parity")
        _require(a["reduction"] >= floor,
                 f"{where}: reduction {a['reduction']:.2f}x is below the "
                 f"{floor:.2f}x floor (warm-start regression)")
        parts.append(f"{a['name']} {a['reduction']:.2f}x >= {floor:.2f}x")
    return "warmstart gate passed: " + ", ".join(parts)


def check_scenarios(doc: object, name: str) -> int:
    _require_keys(doc, {"max_trials": int, "batch_size": int,
                        "scenario_sweeps": list, "acceptance": dict}, name)
    _require(doc["max_trials"] >= 1, f"{name}: max_trials < 1")
    _require(doc["batch_size"] >= 1, f"{name}: batch_size < 1")
    _require(len(doc["scenario_sweeps"]) > 0, f"{name}: empty scenario_sweeps")
    for i, s in enumerate(doc["scenario_sweeps"]):
        where = f"{name}: scenario_sweeps[{i}]"
        _require_keys(s, {"kind": str, "task": str,
                          "distinct_best_configs": int, "cells": list}, where)
        _require(len(s["cells"]) > 0, f"{where}: empty cells")
        _require(0 <= s["distinct_best_configs"] <= len(s["cells"]),
                 f"{where}: distinct_best_configs {s['distinct_best_configs']}"
                 f" outside [0, {len(s['cells'])}]")
        for j, c in enumerate(s["cells"]):
            cwhere = f"{where}: cells[{j}]"
            _require_keys(c, {"gpu": str, "tensor_cores": int,
                              "best_gflops": NUMBER, "best_config": str,
                              "valid_frac": NUMBER, "wall_ms": NUMBER},
                          cwhere)
            for key in ("tc_selected", "decisions_identical"):
                _require(isinstance(c.get(key), bool),
                         f"{cwhere}: key '{key}' must be a boolean")
            _require(c["tensor_cores"] >= 0,
                     f"{cwhere}: negative tensor_cores")
            _require(c["best_gflops"] >= 0,
                     f"{cwhere}: negative best_gflops")
            _require(0.0 <= c["valid_frac"] <= 1.0,
                     f"{cwhere}: valid_frac outside [0, 1]")
            _require(c["wall_ms"] >= 0, f"{cwhere}: negative wall_ms")
    for key in ("optima_move", "tc_selected_somewhere", "tc_never_on_plain",
                "decisions_identical", "pass"):
        _require(isinstance(doc["acceptance"].get(key), bool),
                 f"{name}: acceptance key '{key}' must be a boolean")
    return len(doc["scenario_sweeps"])


# Per-kind distinct-optima floor enforced by --check-scenarios: across the
# swept Blueprints, at least this many must disagree on the best config, or
# the hardware embedding has nothing to learn from the new template kinds.
SCENARIO_DISTINCT_FLOOR = 3


def check_scenarios_gate(doc: object, name: str,
                         floor: int = SCENARIO_DISTINCT_FLOOR) -> str:
    """Gate a validated scenarios doc: optima must move across Blueprints,
    the tensor-core path must win somewhere on TC silicon and never off it,
    and every cell must be thread-count deterministic.

    Never skipped: the measurer is simulated, so none of these properties
    depend on the host. Returns a human-readable summary; raises
    ValidationError on regression.
    """
    check_scenarios(doc, name)
    tc_selected_somewhere = False
    parts = []
    for i, s in enumerate(doc["scenario_sweeps"]):
        where = f"{name}: scenario_sweeps[{i}] ('{s['kind']}')"
        _require(s["distinct_best_configs"] >= floor,
                 f"{where}: only {s['distinct_best_configs']} distinct "
                 f"optima across {len(s['cells'])} Blueprints (floor {floor};"
                 f" hardware is not moving the optimum)")
        for j, c in enumerate(s["cells"]):
            cwhere = f"{where}: cells[{j}] ('{c['gpu']}')"
            _require(c["decisions_identical"],
                     f"{cwhere}: tuning decisions differ across thread "
                     f"counts (this is a correctness bug, never skipped)")
            if c["tc_selected"]:
                _require(c["tensor_cores"] > 0,
                         f"{cwhere}: tensor-core config selected on silicon "
                         f"without tensor cores (resource gate is broken)")
                tc_selected_somewhere = True
        parts.append(f"{s['kind']} {s['distinct_best_configs']}/"
                     f"{len(s['cells'])} optima")
    _require(tc_selected_somewhere,
             f"{name}: tensor-core path never selected on any tensor-core "
             f"Blueprint (the fast path is not paying off)")
    _require(doc["acceptance"]["pass"],
             f"{name}: acceptance.pass is false (bench-side gate failed)")
    return "scenarios gate passed: " + ", ".join(parts) + ", tc path selected"


def check_journal_lines(lines: list[str], name: str) -> int:
    errors = {"none", "transient", "timeout", "corrupt"}
    n = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        where = f"{name}:{lineno}"
        try:
            t = json.loads(line)
        except json.JSONDecodeError as e:
            raise ValidationError(f"{where}: bad JSON ({e})") from e
        _require_keys(t, {"step": int, "config": list, "error": str,
                          "attempts": int, "gflops": (int, float, type(None)),
                          "latency_s": (int, float, type(None)),
                          "cost_s": NUMBER, "elapsed_s": NUMBER}, where)
        _require(isinstance(t.get("valid"), bool),
                 f"{where}: key 'valid' must be a boolean")
        _require(t["error"] in errors,
                 f"{where}: unknown error kind '{t['error']}'")
        _require(t["step"] == n,
                 f"{where}: step {t['step']}, expected {n} "
                 f"(journal must be gapless and duplicate-free)")
        _require(t["attempts"] >= 1, f"{where}: attempts < 1")
        _require(t["cost_s"] >= 0, f"{where}: negative cost_s")
        for j, v in enumerate(t["config"]):
            _require(isinstance(v, int) and not isinstance(v, bool) and v >= 0,
                     f"{where}: config[{j}] is not a non-negative integer")
        if t["valid"]:
            _require(t["error"] == "none",
                     f"{where}: valid trial carries error '{t['error']}'")
        n += 1
    _require(n > 0, f"{name}: no journal lines")
    return n


def _check_span_ids(args: object, where: str) -> None:
    """Distributed-trace id formats, when the event carries them."""
    if not isinstance(args, dict):
        return
    for key, width in (("trace_id", 32), ("span_id", 16),
                       ("parent_span_id", 16)):
        if key not in args:
            continue
        v = args[key]
        _require(isinstance(v, str) and len(v) == width
                 and all(c in "0123456789abcdef" for c in v),
                 f"{where}: '{key}' must be {width} lowercase hex chars")
    if "trace_id" in args:
        _require(set(args["trace_id"]) != {"0"},
                 f"{where}: all-zero trace_id")


def _check_x_event(e: dict, where: str) -> None:
    _require_keys(e, {"name": str, "ph": str, "ts": NUMBER}, where)
    _require(e["ts"] >= 0, f"{where}: negative ts")
    _require(e["ts"] < 1e15, f"{where}: implausible ts (wrapped clock?)")
    if e["ph"] == "X":
        _require_keys(e, {"dur": NUMBER}, where)
        _require(e["dur"] >= 0, f"{where}: negative dur")
        _check_span_ids(e.get("args"), where)


def check_trace(doc: object, name: str) -> int:
    _require_keys(doc, {"traceEvents": list}, name)
    events = doc["traceEvents"]
    _require(len(events) > 0, f"{name}: empty traceEvents")
    for i, e in enumerate(events):
        _check_x_event(e, f"{name}: traceEvents[{i}]")
    return len(events)


def check_trace_lines(lines: list[str], name: str) -> int:
    """JSONL trace segments (GLIMPSE_TRACE=<path>.jsonl, appendable)."""
    n = 0
    in_segment = False
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        where = f"{name}:{lineno}"
        try:
            e = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"{where}: bad JSON ({exc})") from exc
        _require(isinstance(e, dict), f"{where}: expected an object")
        if e.get("name") == "trace_meta":
            _require(e.get("ph") == "M", f"{where}: trace_meta must be 'M'")
            args = e.get("args")
            _require(isinstance(args, dict), f"{where}: trace_meta needs args")
            _require_keys(args, {"process": str, "base_unix_ns": int},
                          f"{where}: trace_meta args")
            in_segment = True
            continue
        _require(in_segment,
                 f"{where}: event before any trace_meta segment header")
        _require(e.get("ph") in ("X", "M"),
                 f"{where}: unexpected phase '{e.get('ph')}'")
        _check_x_event(e, where)
        if e["ph"] == "X":
            n += 1
    _require(in_segment, f"{name}: no trace_meta segment header")
    _require(n > 0, f"{name}: no span events")
    return n


def check_metrics_lines(lines: list[str], name: str) -> int:
    kinds = {"counter", "gauge", "histogram"}
    n = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        where = f"{name}:{lineno}"
        try:
            m = json.loads(line)
        except json.JSONDecodeError as e:
            raise ValidationError(f"{where}: bad JSON ({e})") from e
        _require_keys(m, {"name": str, "type": str}, where)
        _require(m["type"] in kinds,
                 f"{where}: unknown metric type '{m['type']}'")
        if m["type"] in ("counter", "gauge"):
            _require_keys(m, {"value": NUMBER}, where)
        else:
            _require_keys(m, {"count": int, "sum": NUMBER, "min": NUMBER,
                              "max": NUMBER, "p50": NUMBER, "p90": NUMBER,
                              "p99": NUMBER, "buckets": list}, where)
            total = 0
            for j, b in enumerate(m["buckets"]):
                bwhere = f"{where}: buckets[{j}]"
                _require_keys(b, {"count": int}, bwhere)
                _require("le" in b, f"{bwhere}: missing key 'le'")
                _require(b["le"] is None or isinstance(b["le"], NUMBER),
                         f"{bwhere}: 'le' must be a number or null")
                total += b["count"]
            _require(total == m["count"],
                     f"{where}: bucket counts sum to {total}, "
                     f"but count={m['count']}")
        n += 1
    _require(n > 0, f"{name}: no metric lines")
    return n


# ---- dispatch ---------------------------------------------------------------


def sniff_kind(text: str) -> str:
    stripped = text.lstrip()
    first_line = stripped.splitlines()[0] if stripped else ""
    try:
        doc = json.loads(first_line)
        if isinstance(doc, dict) and "step" in doc and "config" in doc:
            return "journal"
        if isinstance(doc, dict) and "ph" in doc:
            return "trace"  # JSONL trace segment (trace_meta or event line)
        if isinstance(doc, dict) and "name" in doc and "type" in doc:
            return "metrics"
    except json.JSONDecodeError:
        pass
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        return "metrics"  # multi-line JSONL; per-line errors surface there
    if isinstance(doc, dict) and "traceEvents" in doc:
        return "trace"
    if isinstance(doc, dict) and "fault_paths" in doc:
        return "faults"
    if isinstance(doc, dict) and "sweeps" in doc:
        return "cache"
    if isinstance(doc, dict) and "scenario_sweeps" in doc:
        return "scenarios"
    if isinstance(doc, dict) and "scenarios" in doc:
        return "service"
    if isinstance(doc, dict) and "scaling_4v1" in doc:
        return "fleet"
    if isinstance(doc, dict) and "arms" in doc:
        return "warmstart"
    return "bench"


def check_file(path: Path, kind: str | None, gate_speedup: bool = False,
               gate_fleet: bool = False, gate_warmstart: bool = False,
               gate_scenarios: bool = False) -> str:
    text = path.read_text()
    kind = kind or sniff_kind(text)
    if gate_scenarios:
        _require(kind == "scenarios",
                 f"{path}: --check-scenarios only applies to scenarios json "
                 f"(sniffed '{kind}')")
        return check_scenarios_gate(json.loads(text), str(path))
    if gate_speedup:
        _require(kind == "bench",
                 f"{path}: --check-speedup only applies to bench json "
                 f"(sniffed '{kind}')")
        return check_speedup(json.loads(text), str(path))
    if gate_fleet:
        _require(kind == "fleet",
                 f"{path}: --check-fleet-scaling only applies to fleet json "
                 f"(sniffed '{kind}')")
        return check_fleet_scaling(json.loads(text), str(path))
    if gate_warmstart:
        _require(kind == "warmstart",
                 f"{path}: --check-warmstart only applies to warmstart json "
                 f"(sniffed '{kind}')")
        return check_warmstart_gate(json.loads(text), str(path))
    if kind == "bench":
        n = check_bench(json.loads(text), str(path))
        return f"bench json, {n} path(s)"
    if kind == "trace":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None
        if isinstance(doc, dict) and "traceEvents" in doc:
            n = check_trace(doc, str(path))
            return f"chrome trace, {n} event(s)"
        n = check_trace_lines(text.splitlines(), str(path))
        return f"trace jsonl, {n} span(s)"
    if kind == "metrics":
        n = check_metrics_lines(text.splitlines(), str(path))
        return f"metrics jsonl, {n} metric(s)"
    if kind == "faults":
        n = check_faults(json.loads(text), str(path))
        return f"faults json, {n} fault path(s)"
    if kind == "journal":
        n = check_journal_lines(text.splitlines(), str(path))
        return f"session journal, {n} trial(s)"
    if kind == "cache":
        n = check_cache(json.loads(text), str(path))
        return f"cache json, {n} sweep(s)"
    if kind == "service":
        n = check_service(json.loads(text), str(path))
        return f"service json, {n} scenario(s)"
    if kind == "fleet":
        n = check_fleet(json.loads(text), str(path))
        return f"fleet json, {n} point(s)"
    if kind == "warmstart":
        n = check_warmstart(json.loads(text), str(path))
        return f"warmstart json, {n} arm(s)"
    if kind == "scenarios":
        n = check_scenarios(json.loads(text), str(path))
        return f"scenarios json, {n} sweep(s)"
    raise ValidationError(f"{path}: unknown kind '{kind}'")


# ---- selftest ---------------------------------------------------------------

VALID_BENCH = {
    "threads_serial": 1,
    "threads_parallel": 8,
    "paths": [
        {"name": "gemm", "serial_ms": 10.0, "parallel_ms": 2.5,
         "speedup": 4.0},
    ],
}

# A bench doc that satisfies the speedup gate on capable hardware.
GATED_BENCH = {
    "threads_serial": 1,
    "threads_parallel": 4,
    "hardware_concurrency": 8,
    "simd_compiled": True,
    "simd_enabled": True,
    "paths": [
        {"name": "linalg_matmul", "serial_ms": 40.0, "parallel_ms": 11.0,
         "speedup": 3.64},
        {"name": "fig6_grid", "serial_ms": 900.0, "parallel_ms": 400.0,
         "speedup": 2.25},
        {"name": "pool_dispatch", "serial_ms": 0.1, "parallel_ms": 3.0,
         "speedup": 0.03},
    ],
}

VALID_TRACE = {
    "displayTimeUnit": "ms",
    "traceEvents": [
        {"name": "session.run", "cat": "glimpse", "ph": "X", "pid": 0,
         "tid": 0, "ts": 0.0, "dur": 125.5, "args": {"depth": 0}},
        {"name": "sa.chain", "cat": "glimpse", "ph": "X", "pid": 0,
         "tid": 1, "ts": 10.0, "dur": 50.0, "args": {"depth": 1}},
    ],
}

VALID_TRACE_JSONL = "\n".join([
    json.dumps({"name": "trace_meta", "ph": "M", "pid": 17, "ts": 0,
                "args": {"process": "glimpse_client",
                         "base_unix_ns": 1754600000000000000}}),
    json.dumps({"name": "client.request", "cat": "glimpse", "ph": "X",
                "pid": 17, "tid": 0, "ts": 12.5, "dur": 800.0,
                "args": {"depth": 0,
                         "trace_id": "118d627ac8387f2ece243bda5e27a40b",
                         "span_id": "a4871a5c829f593c", "note": "submit"}}),
    json.dumps({"name": "trace_meta", "ph": "M", "pid": 19, "ts": 0,
                "args": {"process": "glimpsed",
                         "base_unix_ns": 1754600000000100000}}),
    json.dumps({"name": "server.request", "cat": "glimpse", "ph": "X",
                "pid": 19, "tid": 1, "ts": 40.0, "dur": 35.0,
                "args": {"depth": 0,
                         "trace_id": "118d627ac8387f2ece243bda5e27a40b",
                         "span_id": "670c7d0bd5ef0a71",
                         "parent_span_id": "a4871a5c829f593c"}}),
])

VALID_FAULTS = {
    "max_trials": 96,
    "batch_size": 8,
    "fault_paths": [
        {"name": "transient_p0.20", "p_transient": 0.2, "trials": 96,
         "faulted": 3, "recovered": 14, "injected_failures": 23,
         "best_gflops": 397.8, "gpu_seconds": 217.1, "wall_ms": 0.5,
         "checkpointed": False, "resume_bit_identical": True},
    ],
}

VALID_JOURNAL = "\n".join([
    json.dumps({"step": 0, "config": [1, 0, 3], "valid": True,
                "error": "none", "attempts": 1, "gflops": 120.5,
                "latency_s": 0.001, "cost_s": 0.1, "elapsed_s": 0.1}),
    json.dumps({"step": 1, "config": [2, 2, 0], "valid": False,
                "error": "transient", "attempts": 3, "gflops": 0.0,
                "latency_s": 0.0, "cost_s": 0.3, "elapsed_s": 2.4}),
])

VALID_CACHE = {
    "max_trials": 64,
    "batch_size": 8,
    "repeats": 6,
    "sweeps": [
        {"name": "repeat_random", "tuner": "Random", "repeats": 6,
         "trials_total": 384, "measurements_no_cache": 384,
         "measurements_cache": 64, "reduction": 6.0, "cache_hits": 320,
         "traces_identical": True, "wall_ms": 1.5},
    ],
}

VALID_SERVICE = {
    "slots": 4,
    "max_trials": 48,
    "batch_size": 8,
    "scenarios": [
        {"name": "fleet_shared_cache", "clients": 4, "submitted": 18,
         "accepted": 18, "rejected": 0, "completed": 18, "cancelled": 0,
         "trials_total": 768, "cache_hits": 192, "results_identical": True,
         "wall_ms": 2.7},
        {"name": "saturation_burst", "clients": 1, "submitted": 9,
         "accepted": 5, "rejected": 4, "completed": 4, "cancelled": 1,
         "trials_total": 0, "cache_hits": 0, "results_identical": True,
         "wall_ms": 6.2},
    ],
}

VALID_FLEET = {
    "hardware_concurrency": 8,
    "jobs": 48,
    "max_trials": 16,
    "points": [
        {"daemons": 1, "wall_ms": 40.0, "jobs_per_s": 1200.0,
         "completed": 48, "cache_hits": 768,
         "per_shard": [{"shard": "s0", "completed": 48, "cache_hits": 768}]},
        {"daemons": 4, "wall_ms": 12.0, "jobs_per_s": 4000.0,
         "completed": 48, "cache_hits": 768,
         "per_shard": [
             {"shard": "s0", "completed": 8, "cache_hits": 128},
             {"shard": "s1", "completed": 8, "cache_hits": 128},
             {"shard": "s2", "completed": 24, "cache_hits": 384},
             {"shard": "s3", "completed": 8, "cache_hits": 128}]},
    ],
    "scaling_4v1": 3.33,
    "decisions_identical": True,
}

VALID_WARMSTART = {
    "donor_trials": 256,
    "max_trials": 128,
    "batch_size": 8,
    "top_k": 16,
    "arms": [
        {"name": "autotvm", "warm_seeds": 16, "donor_entries": 953,
         "donor_devices": 5, "cold_best_gflops": 2338.5,
         "warm_best_gflops": 2856.6, "parity_gflops": 2221.58,
         "cold_invocations": 113, "warm_invocations": 11,
         "reduction": 10.27, "quality_held": True,
         "decisions_identical": True, "wall_ms": 1178.5},
        {"name": "chameleon", "warm_seeds": 16, "donor_entries": 953,
         "donor_devices": 5, "cold_best_gflops": 2883.4,
         "warm_best_gflops": 2856.6, "parity_gflops": 2739.23,
         "cold_invocations": 92, "warm_invocations": 11,
         "reduction": 8.36, "quality_held": True,
         "decisions_identical": True, "wall_ms": 1258.0},
    ],
}

def _scenario_cell(gpu, tensor_cores, best_gflops, best_config, tc_selected):
    return {"gpu": gpu, "tensor_cores": tensor_cores,
            "best_gflops": best_gflops, "best_config": best_config,
            "tc_selected": tc_selected, "valid_frac": 0.62,
            "decisions_identical": True, "wall_ms": 5000.0}


VALID_SCENARIOS = {
    "max_trials": 224,
    "batch_size": 8,
    "scenario_sweeps": [
        {"kind": "attention", "task": "scenario.attention",
         "distinct_best_configs": 5,
         "cells": [
             _scenario_cell("Jetson Nano", 0, 197.3, "cfgA", False),
             _scenario_cell("Titan Xp", 0, 4777.7, "cfgB", False),
             _scenario_cell("RTX 2080 Ti", 544, 10271.5, "cfgC", True),
             _scenario_cell("A100 PCIe", 432, 12249.4, "cfgD", True),
             _scenario_cell("H100 PCIe", 456, 12918.9, "cfgE", True)]},
        {"kind": "depthwise_conv2d", "task": "scenario.depthwise",
         "distinct_best_configs": 4,
         "cells": [
             _scenario_cell("Jetson Nano", 0, 14.1, "cfgF", False),
             _scenario_cell("Titan Xp", 0, 301.2, "cfgG", False),
             _scenario_cell("RTX 2080 Ti", 544, 414.9, "cfgG", False),
             _scenario_cell("A100 PCIe", 432, 598.8, "cfgH", False),
             _scenario_cell("H100 PCIe", 456, 731.0, "cfgI", False)]},
    ],
    "acceptance": {"optima_move": True, "tc_selected_somewhere": True,
                   "tc_never_on_plain": True, "decisions_identical": True,
                   "pass": True},
}


VALID_METRICS = "\n".join([
    json.dumps({"name": "session.trials", "type": "counter", "value": 64}),
    json.dumps({"name": "surrogate.train_size", "type": "gauge",
                "value": 48.0}),
    json.dumps({"name": "measure.cost_s", "type": "histogram", "count": 3,
                "sum": 1.5, "min": 0.1, "max": 1.0, "p50": 0.4, "p90": 0.9,
                "p99": 1.0,
                "buckets": [{"le": 0.5, "count": 2},
                            {"le": None, "count": 1}]}),
])


def selftest() -> int:
    cases = [
        # (description, kind, content, should_pass)
        ("valid bench", None, json.dumps(VALID_BENCH), True),
        ("valid trace", None, json.dumps(VALID_TRACE), True),
        ("valid metrics", None, VALID_METRICS, True),
        ("bench missing paths", "bench",
         json.dumps({"threads_serial": 1, "threads_parallel": 8}), False),
        ("bench path missing serial_ms", "bench",
         json.dumps({"threads_serial": 1, "threads_parallel": 8,
                     "paths": [{"name": "x", "parallel_ms": 1.0}]}), False),
        ("trace event missing dur", "trace",
         json.dumps({"traceEvents": [{"name": "a", "ph": "X", "ts": 0.0}]}),
         False),
        ("trace with string ts", "trace",
         json.dumps({"traceEvents": [{"name": "a", "ph": "X", "ts": "0",
                                      "dur": 1.0}]}), False),
        ("valid trace jsonl", None, VALID_TRACE_JSONL, True),
        ("trace jsonl sniffs without forced kind", None,
         VALID_TRACE_JSONL, True),
        ("trace jsonl event before meta", "trace",
         "\n".join(VALID_TRACE_JSONL.splitlines()[1:]), False),
        ("trace jsonl short trace_id", "trace",
         VALID_TRACE_JSONL.replace("118d627ac8387f2ece243bda5e27a40b",
                                   "118d"), False),
        ("trace jsonl uppercase span_id", "trace",
         VALID_TRACE_JSONL.replace("a4871a5c829f593c",
                                   "A4871A5C829F593C"), False),
        ("trace jsonl wrapped timestamp", "trace",
         VALID_TRACE_JSONL.replace('"ts": 40.0',
                                   '"ts": 18446744073709552.0'), False),
        ("trace jsonl meta missing base", "trace",
         VALID_TRACE_JSONL.replace('"base_unix_ns"', '"nope"'), False),
        ("metrics line missing type", "metrics",
         json.dumps({"name": "x", "value": 1}), False),
        ("metrics bucket sum mismatch", "metrics",
         json.dumps({"name": "h", "type": "histogram", "count": 5,
                     "sum": 1.0, "min": 0.1, "max": 1.0, "p50": 0.5,
                     "p90": 0.9, "p99": 1.0,
                     "buckets": [{"le": None, "count": 1}]}), False),
        ("not json at all", "bench", "not json {", False),
        ("valid faults", None, json.dumps(VALID_FAULTS), True),
        ("valid journal", None, VALID_JOURNAL, True),
        ("faults more faulted than trials", "faults",
         json.dumps({"max_trials": 8, "batch_size": 8, "fault_paths": [
             dict(VALID_FAULTS["fault_paths"][0], faulted=97)]}), False),
        ("faults missing resume flag", "faults",
         json.dumps({"max_trials": 8, "batch_size": 8, "fault_paths": [
             {k: v for k, v in VALID_FAULTS["fault_paths"][0].items()
              if k != "resume_bit_identical"}]}), False),
        ("journal with a step gap", "journal",
         VALID_JOURNAL.replace('"step": 1', '"step": 5'), False),
        ("journal valid trial with error", "journal",
         VALID_JOURNAL.replace('"error": "none"', '"error": "timeout"'),
         False),
        ("journal unknown error kind", "journal",
         VALID_JOURNAL.replace('"transient"', '"gremlins"'), False),
        ("valid cache", None, json.dumps(VALID_CACHE), True),
        ("cache reduction inconsistent", "cache",
         json.dumps(dict(VALID_CACHE, sweeps=[
             dict(VALID_CACHE["sweeps"][0], reduction=2.0)])), False),
        ("cache arm measured more than baseline", "cache",
         json.dumps(dict(VALID_CACHE, sweeps=[
             dict(VALID_CACHE["sweeps"][0], measurements_cache=500)])),
         False),
        ("cache missing traces_identical", "cache",
         json.dumps(dict(VALID_CACHE, sweeps=[
             {k: v for k, v in VALID_CACHE["sweeps"][0].items()
              if k != "traces_identical"}])), False),
        ("valid service", None, json.dumps(VALID_SERVICE), True),
        ("service admission does not account", "service",
         json.dumps(dict(VALID_SERVICE, scenarios=[
             dict(VALID_SERVICE["scenarios"][1], rejected=3)])), False),
        ("service settled more than accepted", "service",
         json.dumps(dict(VALID_SERVICE, scenarios=[
             dict(VALID_SERVICE["scenarios"][0], completed=99)])), False),
        ("service missing results_identical", "service",
         json.dumps(dict(VALID_SERVICE, scenarios=[
             {k: v for k, v in VALID_SERVICE["scenarios"][0].items()
              if k != "results_identical"}])), False),
        ("service tracing overhead accepted", "service",
         json.dumps(dict(VALID_SERVICE, tracing_overhead={
             "requests": 2000, "off_us_per_req": 11.5, "on_us_per_req": 12.75,
             "overhead_us_per_req": 1.25, "traced_spans": 8000})), True),
        ("service tracing overhead negative latency", "service",
         json.dumps(dict(VALID_SERVICE, tracing_overhead={
             "requests": 2000, "off_us_per_req": -1.0, "on_us_per_req": 12.75,
             "overhead_us_per_req": 13.75, "traced_spans": 8000})), False),
        ("speedup gate passes on capable hardware", "speedup",
         json.dumps(GATED_BENCH), True),
        ("speedup gate catches a matmul regression", "speedup",
         json.dumps(dict(GATED_BENCH, paths=[
             dict(GATED_BENCH["paths"][0], parallel_ms=20.0),
             GATED_BENCH["paths"][1], GATED_BENCH["paths"][2]])), False),
        ("speedup gate requires the gated paths", "speedup",
         json.dumps(dict(GATED_BENCH, paths=[GATED_BENCH["paths"][0]])),
         False),
        ("speedup gate skips on too-narrow hardware", "speedup",
         json.dumps(dict(GATED_BENCH, hardware_concurrency=1, paths=[
             dict(GATED_BENCH["paths"][0], parallel_ms=50.0),
             GATED_BENCH["paths"][1], GATED_BENCH["paths"][2]])), True),
        ("speedup gate skips below 4 parallel threads", "speedup",
         json.dumps(dict(GATED_BENCH, threads_parallel=2, paths=[
             dict(GATED_BENCH["paths"][0], parallel_ms=50.0),
             GATED_BENCH["paths"][1], GATED_BENCH["paths"][2]])), True),
        ("speedup gate rejects non-bench input", "speedup",
         json.dumps(VALID_TRACE), False),
        ("valid fleet sniffs without forced kind", None,
         json.dumps(VALID_FLEET), True),
        ("fleet point missing a job", "fleet",
         json.dumps(dict(VALID_FLEET, points=[
             VALID_FLEET["points"][0],
             dict(VALID_FLEET["points"][1], completed=47)])), False),
        ("fleet decisions not identical", "fleet",
         json.dumps(dict(VALID_FLEET, decisions_identical=False)), False),
        ("fleet per-shard counts do not sum", "fleet",
         json.dumps(dict(VALID_FLEET, points=[
             VALID_FLEET["points"][0],
             dict(VALID_FLEET["points"][1], cache_hits=1)])), False),
        ("fleet daemons not increasing", "fleet",
         json.dumps(dict(VALID_FLEET, points=[
             VALID_FLEET["points"][1],
             VALID_FLEET["points"][0]])), False),
        ("fleet scaling gate passes on capable hardware", "fleet-scaling",
         json.dumps(VALID_FLEET), True),
        ("fleet scaling gate catches a regression", "fleet-scaling",
         json.dumps(dict(VALID_FLEET, scaling_4v1=1.2)), False),
        ("fleet scaling gate skips on too-narrow hardware", "fleet-scaling",
         json.dumps(dict(VALID_FLEET, hardware_concurrency=1,
                         scaling_4v1=0.4)), True),
        ("fleet scaling gate rejects non-fleet input", "fleet-scaling",
         json.dumps(VALID_SERVICE), False),
        ("valid warmstart sniffs without forced kind", None,
         json.dumps(VALID_WARMSTART), True),
        ("warmstart reduction inconsistent", "warmstart",
         json.dumps(dict(VALID_WARMSTART, arms=[
             dict(VALID_WARMSTART["arms"][0], reduction=3.0)])), False),
        ("warmstart parity above cold best", "warmstart",
         json.dumps(dict(VALID_WARMSTART, arms=[
             dict(VALID_WARMSTART["arms"][0], parity_gflops=9000.0)])),
         False),
        ("warmstart missing decisions_identical", "warmstart",
         json.dumps(dict(VALID_WARMSTART, arms=[
             {k: v for k, v in VALID_WARMSTART["arms"][0].items()
              if k != "decisions_identical"}])), False),
        ("warmstart never-reached-parity must report zero", "warmstart",
         json.dumps(dict(VALID_WARMSTART, arms=[
             dict(VALID_WARMSTART["arms"][0], warm_invocations=0)])), False),
        ("warmstart gate passes", "warmstart-gate",
         json.dumps(VALID_WARMSTART), True),
        ("warmstart gate catches a weak reduction", "warmstart-gate",
         json.dumps(dict(VALID_WARMSTART, arms=[
             VALID_WARMSTART["arms"][0],
             dict(VALID_WARMSTART["arms"][1], cold_invocations=13,
                  reduction=1.18)])), False),
        ("warmstart gate catches a quality miss", "warmstart-gate",
         json.dumps(dict(VALID_WARMSTART, arms=[
             dict(VALID_WARMSTART["arms"][0], quality_held=False)])), False),
        ("warmstart gate catches nondeterminism", "warmstart-gate",
         json.dumps(dict(VALID_WARMSTART, arms=[
             dict(VALID_WARMSTART["arms"][0],
                  decisions_identical=False)])), False),
        ("warmstart gate rejects non-warmstart input", "warmstart-gate",
         json.dumps(VALID_FLEET), False),
        ("valid scenarios sniffs without forced kind", None,
         json.dumps(VALID_SCENARIOS), True),
        ("scenarios cell missing tc_selected", "scenarios",
         json.dumps(dict(VALID_SCENARIOS, scenario_sweeps=[
             dict(VALID_SCENARIOS["scenario_sweeps"][0], cells=[
                 {k: v for k, v in _scenario_cell("Titan Xp", 0, 1.0, "c",
                                                  False).items()
                  if k != "tc_selected"}])])), False),
        ("scenarios valid_frac out of range", "scenarios",
         json.dumps(VALID_SCENARIOS).replace('"valid_frac": 0.62',
                                             '"valid_frac": 1.62', 1), False),
        ("scenarios distinct count above cell count", "scenarios",
         json.dumps(VALID_SCENARIOS).replace('"distinct_best_configs": 5',
                                             '"distinct_best_configs": 9'),
         False),
        ("scenarios gate passes", "scenarios-gate",
         json.dumps(VALID_SCENARIOS), True),
        ("scenarios gate catches tc selected on plain silicon",
         "scenarios-gate",
         json.dumps(VALID_SCENARIOS).replace(
             '"best_config": "cfgA", "tc_selected": false',
             '"best_config": "cfgA", "tc_selected": true'), False),
        ("scenarios gate catches too few distinct optima", "scenarios-gate",
         json.dumps(VALID_SCENARIOS).replace('"distinct_best_configs": 4',
                                             '"distinct_best_configs": 2'),
         False),
        ("scenarios gate catches nondeterminism", "scenarios-gate",
         json.dumps(VALID_SCENARIOS).replace('"decisions_identical": true',
                                             '"decisions_identical": false',
                                             1), False),
        ("scenarios gate catches a never-winning tc path", "scenarios-gate",
         json.dumps(VALID_SCENARIOS).replace('"tc_selected": true',
                                             '"tc_selected": false'), False),
        ("scenarios gate rejects non-scenarios input", "scenarios-gate",
         json.dumps(VALID_SERVICE), False),
    ]
    failures = 0
    with tempfile.TemporaryDirectory(prefix="check_bench_json_") as tmp:
        for i, (desc, kind, content, should_pass) in enumerate(cases):
            path = Path(tmp) / f"case_{i}.json"
            path.write_text(content)
            try:
                if kind == "speedup":
                    check_file(path, None, gate_speedup=True)
                elif kind == "fleet-scaling":
                    check_file(path, None, gate_fleet=True)
                elif kind == "warmstart-gate":
                    check_file(path, None, gate_warmstart=True)
                elif kind == "scenarios-gate":
                    check_file(path, None, gate_scenarios=True)
                else:
                    check_file(path, kind)
                passed = True
            except (ValidationError, json.JSONDecodeError):
                passed = False
            status = "ok" if passed == should_pass else "FAIL"
            if passed != should_pass:
                failures += 1
            expect = "accept" if should_pass else "reject"
            print(f"[{status}] selftest: {desc} (expected {expect})")
    if failures:
        print(f"selftest: {failures} case(s) misbehaved", file=sys.stderr)
        return 1
    print(f"selftest: all {len(cases)} cases behaved")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=Path,
                        help="files to validate")
    parser.add_argument("--kind",
                        choices=["bench", "trace", "metrics", "faults",
                                 "journal", "cache", "service", "fleet",
                                 "warmstart", "scenarios"],
                        help="force the file kind instead of sniffing")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in validator test cases")
    parser.add_argument("--check-speedup", action="store_true",
                        help="gate bench files against per-path parallel "
                             "speedup floors (perf regression gate)")
    parser.add_argument("--check-fleet-scaling", action="store_true",
                        help="gate fleet files against the aggregate "
                             "jobs/sec scaling floor (skips on hosts with "
                             "fewer cores than the largest shard count)")
    parser.add_argument("--check-warmstart", action="store_true",
                        help="gate warmstart files: every arm must hold "
                             "cold-run quality with >= 50%% fewer measurer "
                             "invocations and thread-count-identical "
                             "decisions (never skipped)")
    parser.add_argument("--check-scenarios", action="store_true",
                        help="gate scenarios files: per kind the optimum "
                             "must move across >= 3 Blueprints, tensor "
                             "cores must win on TC silicon and never off "
                             "it, decisions thread-count-identical (never "
                             "skipped)")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()
    if not args.files:
        parser.error("no files given (or use --selftest)")

    status = 0
    for path in args.files:
        try:
            print(f"[ok] {path}: "
                  f"{check_file(path, args.kind, args.check_speedup, args.check_fleet_scaling, args.check_warmstart, args.check_scenarios)}")
        except FileNotFoundError:
            print(f"[FAIL] {path}: no such file", file=sys.stderr)
            status = 1
        except (ValidationError, json.JSONDecodeError) as e:
            print(f"[FAIL] {e}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
