#!/usr/bin/env python3
"""Validate the repo's machine-readable outputs.

Checks three file shapes, selected by content sniffing (or forced with
--kind):

  * bench      -- BENCH_*.json from bench/micro_parallel.cpp:
                  {"threads_serial", "threads_parallel", "paths": [
                    {"name", "serial_ms", "parallel_ms", "speedup"}, ...]}
  * trace      -- Chrome trace-event JSON written via GLIMPSE_TRACE:
                  {"traceEvents": [{"name", "ph", "ts", ...}, ...]};
                  "X" (complete) events must also carry "dur".
  * metrics    -- JSONL written via GLIMPSE_METRICS: one object per line,
                  each with "name" and "type" (counter | gauge | histogram);
                  histograms carry count/sum/min/max/p50/p90/p99/buckets.

Usage:
  tools/check_bench_json.py FILE [FILE ...]
  tools/check_bench_json.py --selftest

Standard library only; exit status 0 iff every file validates.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

NUMBER = (int, float)


class ValidationError(Exception):
    pass


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ValidationError(msg)


def _require_keys(obj: dict, keys: dict, where: str) -> None:
    """keys maps name -> required type (or tuple of types)."""
    _require(isinstance(obj, dict), f"{where}: expected an object")
    for name, types in keys.items():
        _require(name in obj, f"{where}: missing key '{name}'")
        _require(
            isinstance(obj[name], types) and not isinstance(obj[name], bool),
            f"{where}: key '{name}' has wrong type "
            f"({type(obj[name]).__name__})",
        )


# ---- validators -------------------------------------------------------------


def check_bench(doc: object, name: str) -> int:
    _require_keys(doc, {"threads_serial": int, "threads_parallel": int,
                        "paths": list}, name)
    _require(doc["threads_serial"] >= 1, f"{name}: threads_serial < 1")
    _require(doc["threads_parallel"] >= 1, f"{name}: threads_parallel < 1")
    _require(len(doc["paths"]) > 0, f"{name}: empty paths list")
    for i, p in enumerate(doc["paths"]):
        where = f"{name}: paths[{i}]"
        _require_keys(p, {"name": str, "serial_ms": NUMBER,
                          "parallel_ms": NUMBER}, where)
        _require(p["serial_ms"] >= 0, f"{where}: negative serial_ms")
        _require(p["parallel_ms"] >= 0, f"{where}: negative parallel_ms")
    return len(doc["paths"])


def check_trace(doc: object, name: str) -> int:
    _require_keys(doc, {"traceEvents": list}, name)
    events = doc["traceEvents"]
    _require(len(events) > 0, f"{name}: empty traceEvents")
    for i, e in enumerate(events):
        where = f"{name}: traceEvents[{i}]"
        _require_keys(e, {"name": str, "ph": str, "ts": NUMBER}, where)
        _require(e["ts"] >= 0, f"{where}: negative ts")
        if e["ph"] == "X":
            _require_keys(e, {"dur": NUMBER}, where)
            _require(e["dur"] >= 0, f"{where}: negative dur")
    return len(events)


def check_metrics_lines(lines: list[str], name: str) -> int:
    kinds = {"counter", "gauge", "histogram"}
    n = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        where = f"{name}:{lineno}"
        try:
            m = json.loads(line)
        except json.JSONDecodeError as e:
            raise ValidationError(f"{where}: bad JSON ({e})") from e
        _require_keys(m, {"name": str, "type": str}, where)
        _require(m["type"] in kinds,
                 f"{where}: unknown metric type '{m['type']}'")
        if m["type"] in ("counter", "gauge"):
            _require_keys(m, {"value": NUMBER}, where)
        else:
            _require_keys(m, {"count": int, "sum": NUMBER, "min": NUMBER,
                              "max": NUMBER, "p50": NUMBER, "p90": NUMBER,
                              "p99": NUMBER, "buckets": list}, where)
            total = 0
            for j, b in enumerate(m["buckets"]):
                bwhere = f"{where}: buckets[{j}]"
                _require_keys(b, {"count": int}, bwhere)
                _require("le" in b, f"{bwhere}: missing key 'le'")
                _require(b["le"] is None or isinstance(b["le"], NUMBER),
                         f"{bwhere}: 'le' must be a number or null")
                total += b["count"]
            _require(total == m["count"],
                     f"{where}: bucket counts sum to {total}, "
                     f"but count={m['count']}")
        n += 1
    _require(n > 0, f"{name}: no metric lines")
    return n


# ---- dispatch ---------------------------------------------------------------


def sniff_kind(text: str) -> str:
    stripped = text.lstrip()
    first_line = stripped.splitlines()[0] if stripped else ""
    try:
        doc = json.loads(first_line)
        if isinstance(doc, dict) and "name" in doc and "type" in doc:
            return "metrics"
    except json.JSONDecodeError:
        pass
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        return "metrics"  # multi-line JSONL; per-line errors surface there
    if isinstance(doc, dict) and "traceEvents" in doc:
        return "trace"
    return "bench"


def check_file(path: Path, kind: str | None) -> str:
    text = path.read_text()
    kind = kind or sniff_kind(text)
    if kind == "bench":
        n = check_bench(json.loads(text), str(path))
        return f"bench json, {n} path(s)"
    if kind == "trace":
        n = check_trace(json.loads(text), str(path))
        return f"chrome trace, {n} event(s)"
    if kind == "metrics":
        n = check_metrics_lines(text.splitlines(), str(path))
        return f"metrics jsonl, {n} metric(s)"
    raise ValidationError(f"{path}: unknown kind '{kind}'")


# ---- selftest ---------------------------------------------------------------

VALID_BENCH = {
    "threads_serial": 1,
    "threads_parallel": 8,
    "paths": [
        {"name": "gemm", "serial_ms": 10.0, "parallel_ms": 2.5,
         "speedup": 4.0},
    ],
}

VALID_TRACE = {
    "displayTimeUnit": "ms",
    "traceEvents": [
        {"name": "session.run", "cat": "glimpse", "ph": "X", "pid": 0,
         "tid": 0, "ts": 0.0, "dur": 125.5, "args": {"depth": 0}},
        {"name": "sa.chain", "cat": "glimpse", "ph": "X", "pid": 0,
         "tid": 1, "ts": 10.0, "dur": 50.0, "args": {"depth": 1}},
    ],
}

VALID_METRICS = "\n".join([
    json.dumps({"name": "session.trials", "type": "counter", "value": 64}),
    json.dumps({"name": "surrogate.train_size", "type": "gauge",
                "value": 48.0}),
    json.dumps({"name": "measure.cost_s", "type": "histogram", "count": 3,
                "sum": 1.5, "min": 0.1, "max": 1.0, "p50": 0.4, "p90": 0.9,
                "p99": 1.0,
                "buckets": [{"le": 0.5, "count": 2},
                            {"le": None, "count": 1}]}),
])


def selftest() -> int:
    cases = [
        # (description, kind, content, should_pass)
        ("valid bench", None, json.dumps(VALID_BENCH), True),
        ("valid trace", None, json.dumps(VALID_TRACE), True),
        ("valid metrics", None, VALID_METRICS, True),
        ("bench missing paths", "bench",
         json.dumps({"threads_serial": 1, "threads_parallel": 8}), False),
        ("bench path missing serial_ms", "bench",
         json.dumps({"threads_serial": 1, "threads_parallel": 8,
                     "paths": [{"name": "x", "parallel_ms": 1.0}]}), False),
        ("trace event missing dur", "trace",
         json.dumps({"traceEvents": [{"name": "a", "ph": "X", "ts": 0.0}]}),
         False),
        ("trace with string ts", "trace",
         json.dumps({"traceEvents": [{"name": "a", "ph": "X", "ts": "0",
                                      "dur": 1.0}]}), False),
        ("metrics line missing type", "metrics",
         json.dumps({"name": "x", "value": 1}), False),
        ("metrics bucket sum mismatch", "metrics",
         json.dumps({"name": "h", "type": "histogram", "count": 5,
                     "sum": 1.0, "min": 0.1, "max": 1.0, "p50": 0.5,
                     "p90": 0.9, "p99": 1.0,
                     "buckets": [{"le": None, "count": 1}]}), False),
        ("not json at all", "bench", "not json {", False),
    ]
    failures = 0
    with tempfile.TemporaryDirectory(prefix="check_bench_json_") as tmp:
        for i, (desc, kind, content, should_pass) in enumerate(cases):
            path = Path(tmp) / f"case_{i}.json"
            path.write_text(content)
            try:
                check_file(path, kind)
                passed = True
            except (ValidationError, json.JSONDecodeError):
                passed = False
            status = "ok" if passed == should_pass else "FAIL"
            if passed != should_pass:
                failures += 1
            expect = "accept" if should_pass else "reject"
            print(f"[{status}] selftest: {desc} (expected {expect})")
    if failures:
        print(f"selftest: {failures} case(s) misbehaved", file=sys.stderr)
        return 1
    print(f"selftest: all {len(cases)} cases behaved")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=Path,
                        help="files to validate")
    parser.add_argument("--kind", choices=["bench", "trace", "metrics"],
                        help="force the file kind instead of sniffing")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in validator test cases")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()
    if not args.files:
        parser.error("no files given (or use --selftest)")

    status = 0
    for path in args.files:
        try:
            print(f"[ok] {path}: {check_file(path, args.kind)}")
        except FileNotFoundError:
            print(f"[FAIL] {path}: no such file", file=sys.stderr)
            status = 1
        except (ValidationError, json.JSONDecodeError) as e:
            print(f"[FAIL] {e}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
