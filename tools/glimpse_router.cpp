// glimpse_router: consistent-hash front door for a glimpsed fleet.
//
// Speaks the same wire protocol as glimpsed but owns no scheduler: submits
// are routed to the shard the ShardRing picks for the job's task/hardware
// key; status/result/cancel/subscribe follow the job; stats aggregates and
// drain fans out across every shard. A client that cannot hash (one socket,
// zero fleet knowledge) talks to the router exactly as it would to a single
// glimpsed.
//
//   glimpse_router --unix /tmp/router.sock \
//       --shard s0=unix:/tmp/s0.sock --shard s1=unix:/tmp/s1.sock
//   glimpse_router --tcp 7980 --auth front-secret --upstream-auth fleet-secret \
//       --shard s0=tcp:10.0.0.1:7979 --shard s1=tcp:10.0.0.2:7979
//
// Flags:
//   --unix PATH          listen on a Unix-domain socket (default when no
//                        listener is given: ./glimpse_router.sock)
//   --tcp PORT           listen on 127.0.0.1:PORT (0 = ephemeral)
//   --tcp-any            bind --tcp on 0.0.0.0; refused without --auth
//   --shard NAME=ADDR    add a shard; ADDR is unix:PATH or tcp:HOST:PORT.
//                        NAME is the shard's ring identity: every router
//                        and ring-aware client must use identical names or
//                        placement diverges. Repeatable; at least one.
//   --auth TOKEN         shared-secret demanded from the router's clients
//   --upstream-auth TOK  shared-secret the router presents to the shards
//                        (their --auth); defaults to GLIMPSE_AUTH
//   --retries N          transport-failure retries per forward (default 40)
//   --retry-delay S      pause between retries in seconds (default 0.25)
//
// Ready line on stdout once listening:
//   glimpse_router ready unix=<path|-> tcp=<port|-> shards=<n>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include <unistd.h>

#include "common/telemetry/export.hpp"
#include "service/router.hpp"
#include "service/server.hpp"

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  char b = 's';
  ssize_t ignored = ::write(g_signal_pipe[1], &b, 1);
  (void)ignored;
}

[[noreturn]] void usage(const char* argv0, const std::string& error = "") {
  if (!error.empty()) std::cerr << "glimpse_router: " << error << "\n";
  std::cerr << "usage: " << argv0
            << " [--unix PATH] [--tcp PORT] [--tcp-any]"
               " --shard NAME=unix:PATH|tcp:HOST:PORT [--shard ...]"
               " [--auth TOKEN] [--upstream-auth TOKEN]"
               " [--retries N] [--retry-delay S]\n";
  std::exit(error.empty() ? 0 : 2);
}

/// Parse "NAME=unix:PATH" or "NAME=tcp:HOST:PORT".
glimpse::service::ShardEndpoint parse_shard(const char* argv0,
                                            const std::string& spec) {
  glimpse::service::ShardEndpoint ep;
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0)
    usage(argv0, "--shard wants NAME=ADDR, got '" + spec + "'");
  ep.name = spec.substr(0, eq);
  const std::string addr = spec.substr(eq + 1);
  if (addr.rfind("unix:", 0) == 0) {
    ep.unix_path = addr.substr(5);
    if (ep.unix_path.empty()) usage(argv0, "empty unix path in '" + spec + "'");
  } else if (addr.rfind("tcp:", 0) == 0) {
    const std::string hostport = addr.substr(4);
    const std::size_t colon = hostport.rfind(':');
    if (colon == std::string::npos || colon == 0)
      usage(argv0, "--shard tcp wants HOST:PORT, got '" + spec + "'");
    ep.host = hostport.substr(0, colon);
    ep.port = std::atoi(hostport.c_str() + colon + 1);
    if (ep.port <= 0) usage(argv0, "bad port in '" + spec + "'");
  } else {
    usage(argv0, "--shard ADDR must start unix: or tcp:, got '" + spec + "'");
  }
  return ep;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace glimpse;
  telemetry::set_process_label("glimpse_router");

  service::RouterOptions ropts;
  if (const char* env = std::getenv("GLIMPSE_AUTH")) ropts.upstream_auth = env;
  service::ServerOptions sopts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0], arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--unix") {
      sopts.unix_path = next();
    } else if (arg == "--tcp") {
      sopts.tcp_port = std::atoi(next().c_str());
    } else if (arg == "--tcp-any") {
      sopts.tcp_bind_any = true;
    } else if (arg == "--shard") {
      ropts.shards.push_back(parse_shard(argv[0], next()));
    } else if (arg == "--auth") {
      sopts.auth_token = next();
      if (sopts.auth_token.empty()) usage(argv[0], "--auth token is empty");
    } else if (arg == "--upstream-auth") {
      ropts.upstream_auth = next();
    } else if (arg == "--retries") {
      ropts.connect_retries = std::atoi(next().c_str());
      if (ropts.connect_retries < 0) usage(argv[0], "--retries must be >= 0");
    } else if (arg == "--retry-delay") {
      ropts.retry_delay_s = std::atof(next().c_str());
      if (ropts.retry_delay_s < 0.0)
        usage(argv[0], "--retry-delay must be >= 0");
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      usage(argv[0], "unknown flag " + arg);
    }
  }
  if (ropts.shards.empty()) usage(argv[0], "need at least one --shard");
  if (sopts.unix_path.empty() && sopts.tcp_port < 0)
    sopts.unix_path = "glimpse_router.sock";

  try {
    service::Router router(ropts);
    service::Server server(router, sopts);
    server.start();

    if (::pipe(g_signal_pipe) != 0) {
      std::cerr << "glimpse_router: pipe failed\n";
      return 1;
    }
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::thread signal_thread([&server] {
      char b;
      if (::read(g_signal_pipe[0], &b, 1) > 0) server.stop();
    });

    std::cout << "glimpse_router ready unix="
              << (sopts.unix_path.empty() ? "-" : sopts.unix_path)
              << " tcp=" << server.tcp_port()
              << " shards=" << router.ring().size() << std::endl;

    server.wait_shutdown();
    server.stop();
    char b = 'q';
    ssize_t ignored = ::write(g_signal_pipe[1], &b, 1);
    (void)ignored;
    signal_thread.join();
    for (const std::string& path : telemetry::export_to_env_paths())
      std::cerr << "glimpse_router: telemetry written to " << path << "\n";
  } catch (const std::exception& e) {
    std::cerr << "glimpse_router: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
