// glimpse_warmstart: offline trainer + inspector for the warm-start stack
// (src/tuning/warmstart.hpp, src/tuning/config_predictor.hpp).
//
//   glimpse_warmstart train --tiers DIR --out predictor.txt
//   glimpse_warmstart seeds --tiers DIR --model resnet18 --task 1 \
//       --gpu "RTX 2080 Ti" [--predictor predictor.txt] [--top-k 8]
//
// `train` mines every tier-*.jsonl in --tiers for valid measurements whose
// task/hardware fingerprints resolve against the built-in model zoo
// (alexnet, resnet18, vgg16) and GPU database, normalizes each record's
// gflops by its (task, device) group's best, and fits the ConfigPredictor
// MLP on the result. Training is seeded and bit-deterministic: the same
// tiers always produce a byte-identical predictor file.
//
// `seeds` runs the WarmStartAdvisor exactly as a --warmstart daemon would
// for one (model, task, gpu) job and prints the ranked seed configs — the
// operator's view of "what would this job start from?".
//
// Exit status: 0 on success, 1 on runtime failure, 2 on usage errors.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hwspec/database.hpp"
#include "searchspace/models.hpp"
#include "tuning/config_predictor.hpp"
#include "tuning/result_cache.hpp"
#include "tuning/warmstart.hpp"

using namespace glimpse;

namespace {

namespace fs = std::filesystem;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "glimpse_warmstart: " << error << "\n";
  std::cerr <<
      "usage:\n"
      "  glimpse_warmstart train --tiers DIR --out FILE\n"
      "      [--epochs N] [--batch N] [--lr X] [--seed S]\n"
      "  glimpse_warmstart seeds --tiers DIR --model M --task I --gpu NAME\n"
      "      [--predictor FILE] [--top-k K] [--tau X]\n";
  std::exit(error.empty() ? 0 : 2);
}

searchspace::Model model_by_name(const std::string& name) {
  if (name == "alexnet") return searchspace::alexnet();
  if (name == "resnet18") return searchspace::resnet18();
  if (name == "vgg16") return searchspace::vgg16();
  usage("unknown model '" + name + "' (alexnet, resnet18, vgg16)");
}

/// Sorted tier-*.jsonl paths under `dir` (same enumeration as the advisor).
std::vector<fs::path> tier_files(const std::string& dir) {
  std::vector<fs::path> tiers;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() < 12 || name.rfind("tier-", 0) != 0 ||
        name.substr(name.size() - 6) != ".jsonl")
      continue;
    tiers.push_back(it->path());
  }
  std::sort(tiers.begin(), tiers.end());
  return tiers;
}

int cmd_train(const std::string& tiers_dir, const std::string& out_path,
              const tuning::PredictorTrainOptions& topts) {
  // Fingerprint inversion: every task the daemon can serve, every GPU the
  // database knows. Tier entries resolving to neither are skipped — without
  // a Task there are no transfer features, without a datasheet no Blueprint.
  std::vector<std::unique_ptr<searchspace::TaskSet>> sets;
  std::map<std::uint64_t, const searchspace::Task*> tasks;
  for (const searchspace::Model& m : searchspace::evaluation_models()) {
    sets.push_back(std::make_unique<searchspace::TaskSet>(m));
    const searchspace::TaskSet& ts = *sets.back();
    for (std::size_t i = 0; i < ts.num_tasks(); ++i)
      tasks.emplace(tuning::task_fingerprint(ts.task(i)), &ts.task(i));
  }
  std::map<std::uint64_t, const hwspec::GpuSpec*> gpus;
  for (const hwspec::GpuSpec& g : hwspec::gpu_database())
    gpus.emplace(tuning::hardware_fingerprint(g), &g);

  // Best gflops per (task, device, config), then per-(task, device) group
  // best for score normalization. Ordered maps: deterministic sample order.
  struct GroupKey {
    std::uint64_t task_fp, hw_fp;
    auto operator<=>(const GroupKey&) const = default;
  };
  std::map<GroupKey, std::map<searchspace::Config, double>> grouped;
  std::uint64_t lines = 0, skipped = 0;
  std::string line;
  for (const fs::path& tier : tier_files(tiers_dir)) {
    std::ifstream is(tier);
    if (!is.good()) continue;
    while (std::getline(is, line)) {
      if (line.empty()) continue;
      ++lines;
      tuning::CacheKey key;
      gpusim::MeasureResult r;
      bool stale = false;
      if (!tuning::parse_cache_line(line, key, r, stale) || stale ||
          !r.valid || r.gflops <= 0.0 || !tasks.contains(key.task_fp) ||
          !gpus.contains(key.hw_fp)) {
        ++skipped;
        continue;
      }
      auto& cfgs = grouped[{key.task_fp, key.hw_fp}];
      auto [it, inserted] = cfgs.try_emplace(key.config, r.gflops);
      if (!inserted) it->second = std::max(it->second, r.gflops);
    }
  }

  std::vector<tuning::PredictorSample> samples;
  for (const auto& [gk, cfgs] : grouped) {
    double best = 0.0;
    for (const auto& [cfg, gflops] : cfgs) best = std::max(best, gflops);
    for (const auto& [cfg, gflops] : cfgs)
      samples.push_back({tasks.at(gk.task_fp), gpus.at(gk.hw_fp), cfg,
                         gflops / best});
  }
  std::cerr << "glimpse_warmstart: " << lines << " tier lines, " << skipped
            << " unusable, " << samples.size() << " training samples over "
            << grouped.size() << " (task, device) groups\n";
  if (samples.empty()) {
    std::cerr << "glimpse_warmstart: nothing to train on\n";
    return 1;
  }

  tuning::ConfigPredictor predictor;
  predictor.fit(samples, topts);
  predictor.save_file(out_path);
  std::cout << "trained " << out_path << " samples=" << predictor.train_samples()
            << " train_mse=" << predictor.train_mse()
            << " blueprint_dim=" << predictor.blueprint_dim() << std::endl;
  return 0;
}

int cmd_seeds(const std::string& tiers_dir, const std::string& model,
              std::size_t task_index, const std::string& gpu,
              const std::string& predictor_path, std::size_t top_k,
              double tau) {
  const searchspace::TaskSet ts(model_by_name(model));
  if (task_index >= ts.num_tasks())
    usage("task index out of range (model has " +
          std::to_string(ts.num_tasks()) + " tasks)");
  const hwspec::GpuSpec* hw = hwspec::find_gpu(gpu);
  if (hw == nullptr) usage("unknown gpu '" + gpu + "'");

  tuning::ConfigPredictor predictor;
  tuning::WarmStartOptions wopts;
  wopts.shared_dir = tiers_dir;
  wopts.top_k = top_k;
  wopts.blueprint_tau = tau;
  if (!predictor_path.empty()) {
    predictor = tuning::ConfigPredictor::load_file(predictor_path);
    if (!predictor.fitted()) usage("predictor file holds an unfitted model");
    wopts.predictor = &predictor;
  }
  const tuning::WarmStartAdvisor advisor(wopts);
  const tuning::WarmStart ws = advisor.advise(ts.task(task_index), *hw);

  std::cout << "tier_entries=" << ws.tier_entries
            << " donor_entries=" << ws.donor_entries
            << " donor_devices=" << ws.donor_devices
            << " predictor_only=" << (ws.from_predictor_only ? 1 : 0)
            << " blueprint_dim=" << advisor.blueprint_dim() << std::endl;
  for (std::size_t i = 0; i < ws.configs.size(); ++i) {
    std::cout << "seed " << i << " score=" << ws.scores[i] << " config=[";
    for (std::size_t j = 0; j < ws.configs[i].size(); ++j)
      std::cout << (j ? "," : "") << ws.configs[i][j];
    std::cout << "]" << std::endl;
  }
  if (ws.configs.empty())
    std::cerr << "glimpse_warmstart: cold start (no donors"
              << (predictor_path.empty() ? ", no predictor" : "") << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("missing command");
  const std::string command = argv[1];
  std::string tiers, out, model = "resnet18", gpu = "Titan Xp", predictor;
  std::size_t task_index = 0, top_k = 8;
  double tau = 2.0;
  tuning::PredictorTrainOptions topts;

  int i = 2;
  auto next = [&](const std::string& flag) -> std::string {
    if (i + 1 >= argc) usage(flag + " needs a value");
    return argv[++i];
  };
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiers") tiers = next(arg);
    else if (arg == "--out") out = next(arg);
    else if (arg == "--model") model = next(arg);
    else if (arg == "--task") task_index = static_cast<std::size_t>(std::atoll(next(arg).c_str()));
    else if (arg == "--gpu") gpu = next(arg);
    else if (arg == "--predictor") predictor = next(arg);
    else if (arg == "--top-k") top_k = static_cast<std::size_t>(std::atoll(next(arg).c_str()));
    else if (arg == "--tau") tau = std::atof(next(arg).c_str());
    else if (arg == "--epochs") topts.epochs = static_cast<std::size_t>(std::atoll(next(arg).c_str()));
    else if (arg == "--batch") topts.batch = static_cast<std::size_t>(std::atoll(next(arg).c_str()));
    else if (arg == "--lr") topts.lr = std::atof(next(arg).c_str());
    else if (arg == "--seed") topts.seed = static_cast<std::uint64_t>(std::atoll(next(arg).c_str()));
    else if (arg == "--help" || arg == "-h") usage();
    else usage("unknown flag " + arg);
  }
  if (tiers.empty()) usage("--tiers is required");

  try {
    if (command == "train") {
      if (out.empty()) usage("train needs --out");
      return cmd_train(tiers, out, topts);
    }
    if (command == "seeds")
      return cmd_seeds(tiers, model, task_index, gpu, predictor, top_k, tau);
    usage("unknown command '" + command + "'");
  } catch (const std::exception& e) {
    std::cerr << "glimpse_warmstart: " << e.what() << "\n";
    return 1;
  }
}
