#!/usr/bin/env python3
"""Stitch per-process Glimpse trace files into one Chrome trace.

Each Glimpse process (glimpsed, every glimpse_client invocation) exports its
spans with timestamps on its own process-local monotonic clock (t = 0 at
telemetry init). Two input shapes are accepted:

  * JSONL segments (GLIMPSE_TRACE=<path>.jsonl): repeated segments of one
    "trace_meta" metadata line ({"name": "trace_meta", "ph": "M", "pid": ...,
    "args": {"process": ..., "base_unix_ns": ...}}) followed by one "X"
    event object per line. Short-lived processes append, so one file can
    hold segments from many pids.
  * Chrome trace JSON (any other GLIMPSE_TRACE path): a single document
    with top-level "traceEvents", "pid", and "baseUnixNs".

Every segment carries the wall-clock nanoseconds ("base_unix_ns") captured
at the instant its monotonic base was pinned, so cross-process alignment is
a per-segment shift: all timestamps are rebased onto the earliest base seen
across all inputs. Thread ids are namespaced per pid by Chrome already;
process/thread metadata records are (re)emitted per pid.

Usage:
  tools/trace_stitch.py client.jsonl daemon.jsonl -o stitched.json
  tools/trace_stitch.py daemon_trace.json client.jsonl   # writes stitched_trace.json

Prints a per-process event count and the trace ids that cross process
boundaries (the distributed traces the stitch exists to show). Exits 1 when
the inputs hold no events.

Standard library only.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path


class Segment:
    """Events from one process-lifetime, sharing one clock base."""

    def __init__(self, pid: int, process: str, base_unix_ns: int):
        self.pid = pid
        self.process = process
        self.base_unix_ns = base_unix_ns
        self.events: list[dict] = []


def _load_jsonl(path: Path) -> list[Segment]:
    segments: list[Segment] = []
    current: Segment | None = None
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            raise SystemExit(f"{path}:{lineno}: not JSON: {e}")
        if obj.get("name") == "trace_meta" and obj.get("ph") == "M":
            args = obj.get("args", {})
            current = Segment(
                int(obj.get("pid", 0)),
                str(args.get("process", "glimpse")),
                int(args.get("base_unix_ns", 0)),
            )
            segments.append(current)
        elif obj.get("ph") == "X":
            if current is None:
                raise SystemExit(
                    f"{path}:{lineno}: event before any trace_meta line"
                )
            current.events.append(obj)
        # other metadata ("M" process_name etc.) is regenerated at output
    return segments


def _load_chrome(path: Path, doc: dict) -> list[Segment]:
    seg = Segment(
        int(doc.get("pid", 0)),
        str(doc.get("processLabel", "glimpse")),
        int(doc.get("baseUnixNs", 0)),
    )
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "X":
            seg.events.append(ev)
        elif ev.get("ph") == "M" and ev.get("name") == "process_name":
            seg.process = ev.get("args", {}).get("name", seg.process)
    return [seg]


def load(path: Path) -> list[Segment]:
    text = path.read_text().lstrip()
    if text.startswith("{") and '"traceEvents"' in text[:4096]:
        try:
            return _load_chrome(path, json.loads(text))
        except json.JSONDecodeError:
            pass  # fall through: maybe JSONL whose first object is large
    return _load_jsonl(path)


def stitch(segments: list[Segment]) -> dict:
    bases = [s.base_unix_ns for s in segments if s.events]
    origin = min(bases)
    events: list[dict] = []
    seen_pids: dict[int, str] = {}
    seen_tids: set[tuple[int, int]] = set()
    for seg in segments:
        if not seg.events:
            continue
        shift_us = (seg.base_unix_ns - origin) / 1000.0
        if seg.pid not in seen_pids:
            seen_pids[seg.pid] = seg.process
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": seg.pid,
                    "ts": 0,
                    "args": {"name": f"{seg.process} (pid {seg.pid})"},
                }
            )
        for ev in seg.events:
            tid = ev.get("tid", 0)
            if (seg.pid, tid) not in seen_tids:
                seen_tids.add((seg.pid, tid))
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": seg.pid,
                        "tid": tid,
                        "ts": 0,
                        "args": {"name": f"thread {tid}"},
                    }
                )
            out = dict(ev)
            out["pid"] = seg.pid
            out["ts"] = round(float(ev["ts"]) + shift_us, 3)
            events.append(out)
    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0)))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "stitchOriginUnixNs": origin,
    }


def report(segments: list[Segment]) -> None:
    by_process: dict[str, int] = defaultdict(int)
    trace_pids: dict[str, set[int]] = defaultdict(set)
    for seg in segments:
        by_process[f"{seg.process}/{seg.pid}"] += len(seg.events)
        for ev in seg.events:
            tid = ev.get("args", {}).get("trace_id")
            if tid:
                trace_pids[tid].add(seg.pid)
    for proc, count in sorted(by_process.items()):
        print(f"  {proc}: {count} events", file=sys.stderr)
    crossing = sorted(t for t, pids in trace_pids.items() if len(pids) > 1)
    print(
        f"  {len(trace_pids)} trace ids, {len(crossing)} crossing processes",
        file=sys.stderr,
    )
    for t in crossing:
        print(f"    {t}", file=sys.stderr)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("inputs", nargs="+", type=Path)
    ap.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path("stitched_trace.json"),
        help="output Chrome trace path (default stitched_trace.json)",
    )
    args = ap.parse_args()

    segments: list[Segment] = []
    for path in args.inputs:
        if not path.exists():
            print(f"trace_stitch: no such file: {path}", file=sys.stderr)
            return 1
        segments.extend(load(path))
    total = sum(len(s.events) for s in segments)
    if total == 0:
        print("trace_stitch: no events in any input", file=sys.stderr)
        return 1

    doc = stitch(segments)
    args.output.write_text(json.dumps(doc) + "\n")
    print(
        f"trace_stitch: {total} events from {len(segments)} segments -> "
        f"{args.output}",
        file=sys.stderr,
    )
    report(segments)
    return 0


if __name__ == "__main__":
    sys.exit(main())
