// glimpse_client: command-line client for the glimpsed daemon.
//
//   glimpse_client --unix /tmp/glimpsed.sock ping
//   glimpse_client --tcp 7979 submit --client alice --model resnet18 \
//       --task 1 --tuner random --seed 7 --max-trials 64 --wait
//   glimpse_client --unix glimpsed.sock status 3
//   glimpse_client --unix glimpsed.sock result 3 --wait
//   glimpse_client --unix glimpsed.sock stats
//   glimpse_client --unix glimpsed.sock drain
//   glimpse_client --unix glimpsed.sock shutdown
//
// Every response is printed to stdout as its single protocol JSON line, so
// the output is both readable and scriptable (pipe through python -m
// json.tool for pretty-printing). Exit status: 0 on ok/accepted/settled-done
// responses, 1 on error/rejected/failed, 2 on usage errors.
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/telemetry/export.hpp"
#include "service/client.hpp"

namespace {

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "glimpse_client: " << error << "\n";
  std::cerr <<
      "usage: glimpse_client (--unix PATH | --tcp [HOST:]PORT)"
      " [--auth TOKEN] COMMAND\n"
      "  --auth TOKEN   shared-secret for daemons started with --auth\n"
      "                 (default: GLIMPSE_AUTH environment variable)\n"
      "commands:\n"
      "  ping\n"
      "  submit --client NAME [--priority P] [--tuner T] [--model M]\n"
      "         [--task I] [--gpu NAME] [--seed S] [--max-trials N]\n"
      "         [--batch N] [--plateau N] [--time-budget S]\n"
      "         [--no-warmstart] [--wait]\n"
      "         (--no-warmstart: run this job cold even on a daemon\n"
      "          started with --warmstart)\n"
      "  status JOB_ID\n"
      "  result JOB_ID [--wait]\n"
      "  subscribe JOB_ID   (stream status pushes until the job settles)\n"
      "  cancel JOB_ID\n"
      "  stats | drain | shutdown\n";
  std::exit(2);
}

std::uint64_t parse_id(const std::string& s) {
  try {
    std::size_t pos = 0;
    unsigned long long v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    usage("bad job id '" + s + "'");
  }
}

int exit_code(const glimpse::service::Response& r) {
  using glimpse::service::ResponseType;
  if (r.type == ResponseType::kError || r.type == ResponseType::kRejected)
    return 1;
  if ((r.type == ResponseType::kResult || r.type == ResponseType::kStatus) &&
      r.summary.state == "failed")
    return 1;
  return 0;
}

/// Rejections get a human explanation on stderr (stdout stays one
/// scriptable JSON line). retry_after_s == 0 on a rejection is the daemon
/// saying "terminal — retrying cannot succeed": quota_exhausted in
/// particular never clears within a daemon lifetime, so looping on it just
/// burns connections.
void explain_rejection(const glimpse::service::Response& r) {
  if (r.type != glimpse::service::ResponseType::kRejected) return;
  if (r.reason == "quota_exhausted") {
    std::cerr << "glimpse_client: rejected: simulated GPU-second quota "
                 "exhausted; quotas never replenish while the daemon runs, "
                 "so do not retry — ask the operator to raise --quota-gpu-s "
                 "or restart the daemon\n";
  } else if (r.retry_after_s > 0.0) {
    std::cerr << "glimpse_client: rejected (" << r.reason << "); retry after "
              << r.retry_after_s << "s\n";
  } else {
    std::cerr << "glimpse_client: rejected (" << r.reason
              << "); terminal, do not retry\n";
  }
}

int print_and_exit_code(const glimpse::service::Response& r) {
  std::cout << glimpse::service::encode_response(r) << std::endl;
  explain_rejection(r);
  return exit_code(r);
}

/// Human-readable load summary for `stats`, on stderr so stdout stays one
/// scriptable JSON line.
void print_stats_summary(const glimpse::service::Response& r) {
  if (r.type != glimpse::service::ResponseType::kStats) return;
  const glimpse::service::ServiceStats& s = r.stats;
  std::cerr << "queue_depth=" << s.queue_depth << " running=" << s.running
            << " jobs_inflight=" << s.jobs_inflight << "\n"
            << "admitted priority: high=" << s.admitted_prio_high
            << " normal=" << s.admitted_prio_normal
            << " low=" << s.admitted_prio_low << "\n";
}

/// Flushes span buffers to GLIMPSE_TRACE (JSONL segments append, so every
/// client invocation adds to the same file) on every return from main.
/// usage() exits via std::exit and skips it: no request was ever traced.
struct TelemetryFlusher {
  ~TelemetryFlusher() { glimpse::telemetry::export_to_env_paths(); }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace glimpse::service;
  glimpse::telemetry::set_process_label("glimpse_client");
  TelemetryFlusher telemetry_flusher;

  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  std::string auth;
  if (const char* env = std::getenv("GLIMPSE_AUTH")) auth = env;
  int i = 1;
  auto next = [&](const std::string& flag) -> std::string {
    if (i + 1 >= argc) usage(flag + " needs a value");
    return argv[++i];
  };
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--unix") {
      unix_path = next(arg);
    } else if (arg == "--tcp") {
      std::string v = next(arg);
      std::size_t colon = v.rfind(':');
      if (colon != std::string::npos) {
        tcp_host = v.substr(0, colon);
        v = v.substr(colon + 1);
      }
      tcp_port = std::atoi(v.c_str());
      if (tcp_port <= 0) usage("bad --tcp port");
    } else if (arg == "--auth") {
      auth = next(arg);
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      break;  // first non-flag token is the command
    }
  }
  if (i >= argc) usage("missing command");
  if (unix_path.empty() && tcp_port < 0) usage("need --unix or --tcp");
  const std::string command = argv[i++];

  try {
    Client client = unix_path.empty() ? Client::connect_tcp(tcp_host, tcp_port)
                                      : Client::connect_unix(unix_path);
    client.set_auth(auth);

    if (command == "ping") return print_and_exit_code(client.ping());
    if (command == "stats") {
      Response r = client.stats();
      print_stats_summary(r);
      return print_and_exit_code(r);
    }
    if (command == "drain") return print_and_exit_code(client.drain());
    if (command == "shutdown") return print_and_exit_code(client.shutdown());

    if (command == "status" || command == "result" || command == "cancel") {
      if (i >= argc) usage(command + " needs a JOB_ID");
      std::uint64_t id = parse_id(argv[i++]);
      bool wait = false;
      for (; i < argc; ++i) {
        if (std::string(argv[i]) == "--wait" && command == "result") wait = true;
        else usage(std::string("unexpected argument ") + argv[i]);
      }
      if (command == "status") return print_and_exit_code(client.status(id));
      if (command == "cancel") return print_and_exit_code(client.cancel(id));
      return print_and_exit_code(client.result(id, wait));
    }

    if (command == "subscribe") {
      if (i >= argc) usage("subscribe needs a JOB_ID");
      std::uint64_t id = parse_id(argv[i++]);
      if (i < argc) usage(std::string("unexpected argument ") + argv[i]);
      Response final_resp = client.subscribe(id, [](const Response& interim) {
        std::cout << encode_response(interim) << std::endl;
      });
      return print_and_exit_code(final_resp);
    }

    if (command == "submit") {
      std::string name = "cli";
      std::int64_t priority = 0;
      JobSpec spec;
      bool wait = false;
      for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--client") name = next(arg);
        else if (arg == "--priority") priority = std::atoll(next(arg).c_str());
        else if (arg == "--tuner") spec.tuner = next(arg);
        else if (arg == "--model") spec.model = next(arg);
        else if (arg == "--task") spec.task_index = parse_id(next(arg));
        else if (arg == "--gpu") spec.gpu = next(arg);
        else if (arg == "--seed") spec.seed = parse_id(next(arg));
        else if (arg == "--max-trials") spec.max_trials = parse_id(next(arg));
        else if (arg == "--batch") spec.batch_size = parse_id(next(arg));
        else if (arg == "--plateau") spec.plateau_trials = parse_id(next(arg));
        else if (arg == "--time-budget") spec.time_budget_s = std::atof(next(arg).c_str());
        else if (arg == "--no-warmstart") spec.warmstart = false;
        else if (arg == "--wait") wait = true;
        else usage("unknown submit flag " + arg);
      }
      Response r = client.submit(name, priority, spec);
      std::cout << encode_response(r) << std::endl;
      explain_rejection(r);
      if (r.type != ResponseType::kAccepted || !wait) return exit_code(r);
      return print_and_exit_code(client.result(r.job_id, /*wait=*/true));
    }

    usage("unknown command '" + command + "'");
  } catch (const std::exception& e) {
    std::cerr << "glimpse_client: " << e.what() << "\n";
    return 1;
  }
}
