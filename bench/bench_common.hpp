// Shared experiment harness for the figure/table reproduction benches.
//
// Every bench binary: builds the evaluation setup (3 models, 4 GPUs),
// pretrains the leave-eval-GPUs-out artifacts once, then runs the tuning
// sessions its figure needs and prints a paper-style table.
//
// Scaling note (documented in EXPERIMENTS.md): the paper's experiments run
// hundreds of trials per task on physical GPUs over days; these benches run
// the same protocol on the simulator with plateau early-stopping and, for
// per-task figures, a representative task subset, sized so the whole bench
// suite completes in minutes on one CPU core. Relative orderings — the
// paper's claims — are preserved; absolute GPU-hours are simulated.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/autotvm.hpp"
#include "baselines/chameleon.hpp"
#include "baselines/dgp.hpp"
#include "baselines/random_tuner.hpp"
#include "common/table.hpp"
#include "glimpse/glimpse_tuner.hpp"
#include "searchspace/models.hpp"
#include "tuning/metrics.hpp"
#include "tuning/session.hpp"

namespace glimpse::bench {

inline constexpr std::uint64_t kBenchSeed = 20220712;  // DAC'22 week

/// The paper's evaluation setting: AlexNet / ResNet-18 / VGG-16 on the four
/// GPUs of Table 1, with the rest of the database as training population.
struct Setup {
  std::vector<searchspace::TaskSet> models;
  std::vector<const hwspec::GpuSpec*> eval_gpus;
  std::vector<const hwspec::GpuSpec*> train_gpus;

  std::vector<const searchspace::Task*> all_tasks() const;
  /// A representative task subset per model (first direct conv, a mid
  /// direct conv, a winograd, a dense) for per-task sweep figures.
  std::vector<const searchspace::Task*> representative_tasks(
      const searchspace::TaskSet& model) const;
};
Setup make_setup();

/// Everything trained offline (once per bench process).
struct Pretrained {
  std::unique_ptr<tuning::OfflineDataset> dataset;  ///< over train_gpus only
  core::GlimpseArtifacts artifacts;
  std::shared_ptr<const gp::DeepKernelGp> dgp_embedder;
  std::shared_ptr<const ml::GbtRegressor> transfer_model;  ///< for AutoTVM+TL
};
/// Train all shared artifacts; prints progress to stderr.
Pretrained pretrain(const Setup& setup, std::size_t samples_per_pair = 150);

/// Named tuner factories in presentation order.
struct Method {
  std::string name;
  tuning::TunerFactory factory;
};
Method random_method();
Method autotvm_method(const Pretrained& p, bool transfer_learning = false);
Method chameleon_method(const Pretrained& p);
Method dgp_method(const Pretrained& p);
Method glimpse_method(const Pretrained& p, core::GlimpseOptions options = {});

/// Process-wide measurement result cache from GLIMPSE_RESULT_CACHE (see
/// tuning/result_cache.hpp): nullptr when unset, memory-only for "mem",
/// else persistent at the given path. When enabled, run_one attaches it to
/// every session and run_cells switches to the multi-task scheduler so
/// cells share measurements (and a persistent path carries them across
/// bench invocations). Fault-injected runs (GLIMPSE_FAULT_*) never use it.
tuning::ResultCache* env_result_cache();

/// Run one session with a per-(method, task, gpu) deterministic seed.
tuning::Trace run_one(const Method& method, const searchspace::Task& task,
                      const hwspec::GpuSpec& hw, const tuning::SessionOptions& options,
                      double* gpu_seconds = nullptr);

/// One (method, task, gpu) cell of a figure's sweep grid.
struct Cell {
  const Method* method;
  const searchspace::Task* task;
  const hwspec::GpuSpec* gpu;
};

/// Run every cell fanned across the thread pool, returning traces in cell
/// order. Each cell is an independent, deterministically seeded session
/// (see run_one), so the grid's results do not depend on the thread count.
/// When `gpu_seconds` is non-null it is filled with per-cell simulated GPU
/// time, aligned with the traces.
std::vector<tuning::Trace> run_cells(const std::vector<Cell>& cells,
                                     const tuning::SessionOptions& options,
                                     std::vector<double>* gpu_seconds = nullptr);

/// Session options used by the end-to-end experiments (plateau stopping).
tuning::SessionOptions e2e_session_options();

/// Standard bench epilogue: prints the telemetry metrics summary block
/// (when GLIMPSE_METRICS enabled collection) and writes the Chrome trace /
/// JSONL metrics files to the GLIMPSE_TRACE / GLIMPSE_METRICS paths.
/// Returns 0 so harness mains can end with `return bench::finish();`.
int finish();

/// Format helpers.
std::string fmt(double v, int digits = 2);
std::string fmt_pct(double fraction, int digits = 1);
std::string fmt_ratio(double v, int digits = 2);

}  // namespace glimpse::bench
