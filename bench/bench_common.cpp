#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/parallel.hpp"
#include "common/strutil.hpp"
#include "common/telemetry/telemetry.hpp"
#include "gpusim/faulty_measurer.hpp"
#include "tuning/result_cache.hpp"
#include "tuning/scheduler.hpp"

namespace glimpse::bench {

namespace {
double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

std::vector<const searchspace::Task*> Setup::all_tasks() const {
  std::vector<const searchspace::Task*> out;
  for (const auto& m : models)
    for (const auto& t : m.tasks()) out.push_back(&t);
  return out;
}

std::vector<const searchspace::Task*> Setup::representative_tasks(
    const searchspace::TaskSet& model) const {
  using searchspace::TemplateKind;
  std::vector<const searchspace::Task*> out;
  // First and last direct conv, middle winograd, first dense, and the first
  // task of each scenario kind (attention/depthwise/reduction).
  const searchspace::Task* first_conv = nullptr;
  const searchspace::Task* last_conv = nullptr;
  std::vector<const searchspace::Task*> winos;
  const searchspace::Task* dense = nullptr;
  const searchspace::Task* attention = nullptr;
  const searchspace::Task* depthwise = nullptr;
  const searchspace::Task* reduction = nullptr;
  for (const auto& t : model.tasks()) {
    switch (t.kind()) {
      case TemplateKind::kConv2d:
        if (!first_conv) first_conv = &t;
        last_conv = &t;
        break;
      case TemplateKind::kConv2dWinograd: winos.push_back(&t); break;
      case TemplateKind::kDense:
        if (!dense) dense = &t;
        break;
      case TemplateKind::kAttention:
        if (!attention) attention = &t;
        break;
      case TemplateKind::kDepthwiseConv2d:
        if (!depthwise) depthwise = &t;
        break;
      case TemplateKind::kReduction:
        if (!reduction) reduction = &t;
        break;
    }
  }
  if (first_conv) out.push_back(first_conv);
  if (last_conv && last_conv != first_conv) out.push_back(last_conv);
  if (!winos.empty()) out.push_back(winos[winos.size() / 2]);
  if (dense) out.push_back(dense);
  if (attention) out.push_back(attention);
  if (depthwise) out.push_back(depthwise);
  if (reduction) out.push_back(reduction);
  return out;
}

Setup make_setup() {
  Setup s;
  for (auto& m : searchspace::evaluation_models()) s.models.emplace_back(std::move(m));
  s.eval_gpus = hwspec::evaluation_gpus();
  std::vector<std::string> excluded;
  for (const auto* g : s.eval_gpus) excluded.push_back(g->name);
  s.train_gpus = hwspec::training_gpus(excluded);
  return s;
}

Pretrained pretrain(const Setup& setup, std::size_t samples_per_pair) {
  Pretrained p;
  Rng rng(kBenchSeed);
  double t0 = now_s();

  // Offline dataset: every evaluation task measured on *training* GPUs only
  // (strictly leave-target-hardware-out: no eval-GPU measurement is ever
  // seen offline).
  std::vector<const hwspec::GpuSpec*> dataset_gpus = setup.train_gpus;
  // A spread of 10 GPUs across generations keeps pretraining fast without
  // hurting coverage.
  if (dataset_gpus.size() > 10) {
    std::vector<const hwspec::GpuSpec*> picked;
    for (std::size_t i = 0; i < 10; ++i)
      picked.push_back(dataset_gpus[i * dataset_gpus.size() / 10]);
    dataset_gpus = std::move(picked);
  }
  p.dataset = std::make_unique<tuning::OfflineDataset>(
      tuning::OfflineDataset::generate(setup.all_tasks(), dataset_gpus,
                                       samples_per_pair, rng));
  std::fprintf(stderr, "[pretrain] dataset: %zu samples (%.1fs)\n", p.dataset->size(),
               now_s() - t0);

  core::PriorTrainOptions prior_opts;
  prior_opts.epochs = 26;
  core::MetaTrainOptions meta_opts;
  meta_opts.max_groups = 64;
  meta_opts.epochs = 28;
  double t1 = now_s();
  p.artifacts = core::pretrain_glimpse(*p.dataset, setup.train_gpus,
                                       core::default_blueprint_dim(), rng, prior_opts,
                                       meta_opts);
  std::fprintf(stderr, "[pretrain] glimpse artifacts (%.1fs)\n", now_s() - t1);

  double t2 = now_s();
  p.dgp_embedder = baselines::pretrain_dgp_embedder(
      *p.dataset, rng, {.embed_dim = 10, .hidden = 24, .pretrain_epochs = 6});
  std::fprintf(stderr, "[pretrain] dgp embedder (%.1fs)\n", now_s() - t2);

  // Transfer model for AutoTVM+TL. Real transfer learning trains on *tuning
  // logs* of other (network, hardware) combinations — traces that are
  // heavily concentrated around the regions optimal for the SOURCE
  // hardware, which is precisely why the paper finds it "prone to being
  // misguided" on a different target. We emulate a log by taking, from each
  // source (task, GPU) group, its top 25 % configurations (the exploitation
  // phase of a trace) plus a thin random tail (its exploration phase).
  double t3 = now_s();
  std::vector<tuning::TuningRecord> storage;
  std::vector<const searchspace::Task*> storage_tasks;
  for (const auto& group : p.dataset->groups()) {
    std::vector<std::size_t> order = group.sample_indices;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return p.dataset->samples()[a].score > p.dataset->samples()[b].score;
    });
    std::size_t top = order.size() / 4;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (i >= top && i % 8 != 0) continue;  // thin exploration tail
      const auto& s = p.dataset->samples()[order[i]];
      tuning::TuningRecord r;
      r.task_name = s.task->name();
      r.hw_name = s.hw->name;
      r.config = s.config;
      r.valid = s.valid;
      r.gflops = s.gflops;
      storage.push_back(std::move(r));
      storage_tasks.push_back(s.task);
    }
  }
  std::vector<const tuning::TuningRecord*> recs;
  std::vector<const searchspace::Task*> rec_tasks;
  std::size_t stride = std::max<std::size_t>(1, storage.size() / 20000);
  for (std::size_t i = 0; i < storage.size(); i += stride) {
    recs.push_back(&storage[i]);
    rec_tasks.push_back(storage_tasks[i]);
  }
  p.transfer_model = baselines::fit_transfer_model(recs, rec_tasks, rng);
  std::fprintf(stderr, "[pretrain] transfer model (%.1fs); total %.1fs\n",
               now_s() - t3, now_s() - t0);
  return p;
}

Method random_method() { return {"Random", baselines::random_factory()}; }

Method autotvm_method(const Pretrained& p, bool transfer_learning) {
  if (transfer_learning)
    return {"AutoTVM+TL", baselines::autotvm_factory({}, p.transfer_model)};
  return {"AutoTVM", baselines::autotvm_factory()};
}

Method chameleon_method(const Pretrained&) {
  return {"Chameleon", baselines::chameleon_factory()};
}

Method dgp_method(const Pretrained& p) {
  return {"DGP", baselines::dgp_factory(p.dgp_embedder)};
}

Method glimpse_method(const Pretrained& p, core::GlimpseOptions options) {
  return {"Glimpse", core::glimpse_factory(p.artifacts, options)};
}

tuning::ResultCache* env_result_cache() {
  // One process-wide cache, built lazily from GLIMPSE_RESULT_CACHE (nullptr
  // when the variable is unset — the default bench runs stay cache-free).
  static std::unique_ptr<tuning::ResultCache> cache =
      tuning::ResultCache::open_from_env();
  return cache.get();
}

namespace {

std::uint64_t cell_seed(const Method& method, const searchspace::Task& task,
                        const hwspec::GpuSpec& hw) {
  return hash_combine(hash_combine(fnv1a(method.name), task.seed()), hw.seed());
}

}  // namespace

tuning::Trace run_one(const Method& method, const searchspace::Task& task,
                      const hwspec::GpuSpec& hw, const tuning::SessionOptions& options,
                      double* gpu_seconds) {
  auto tuner = method.factory(task, hw, cell_seed(method, task, hw));
  gpusim::SimMeasurer measurer;
  // GLIMPSE_FAULT_* environment variables turn any figure/table bench into a
  // robustness run: measurements go through the fault injector (and thus the
  // retry pipeline) instead of hitting the simulator directly. Fault runs
  // keep the cache out of the loop — a cache hit would skip the injector.
  gpusim::FaultPlan fault_plan = gpusim::FaultPlan::from_env();
  tuning::Trace trace;
  if (fault_plan.enabled()) {
    gpusim::FaultInjector injector(measurer, fault_plan);
    trace = tuning::run_session(*tuner, task, hw, injector, options);
  } else {
    tuning::SessionOptions opts = options;
    if (opts.result_cache == nullptr) opts.result_cache = env_result_cache();
    trace = tuning::run_session(*tuner, task, hw, measurer, opts);
  }
  if (gpu_seconds) *gpu_seconds = measurer.elapsed_seconds();
  return trace;
}

std::vector<tuning::Trace> run_cells(const std::vector<Cell>& cells,
                                     const tuning::SessionOptions& options,
                                     std::vector<double>* gpu_seconds) {
  std::vector<double> seconds(cells.size(), 0.0);
  tuning::ResultCache* cache = env_result_cache();
  if (cache != nullptr && !gpusim::FaultPlan::from_env().enabled()) {
    // GLIMPSE_RESULT_CACHE opts the sweep into the multi-task scheduler:
    // cells share the cache and the scheduler dedups same-round configs
    // across cells, so repeated sweeps (fig5's per-budget columns, fig9's
    // shared tasks) stop re-measuring known configurations. Opt-in because
    // cache hits charge zero simulated time, which shifts decisions under a
    // time budget; the default path stays bit-identical to the paper runs.
    std::vector<std::unique_ptr<tuning::Tuner>> tuners(cells.size());
    std::vector<gpusim::SimMeasurer> measurers(cells.size());
    std::vector<tuning::ScheduledJob> jobs(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& cell = cells[i];
      tuners[i] = cell.method->factory(*cell.task, *cell.gpu,
                                       cell_seed(*cell.method, *cell.task, *cell.gpu));
      jobs[i].tuner = tuners[i].get();
      jobs[i].task = cell.task;
      jobs[i].hw = cell.gpu;
      jobs[i].measurer = &measurers[i];
      jobs[i].options = options;
      jobs[i].options.result_cache = cache;
    }
    std::vector<tuning::Trace> traces = tuning::run_scheduled(
        jobs, {tuning::scheduler_slots_from_env(4)});
    for (std::size_t i = 0; i < cells.size(); ++i)
      seconds[i] = measurers[i].elapsed_seconds();
    if (gpu_seconds) *gpu_seconds = std::move(seconds);
    return traces;
  }
  std::vector<tuning::Trace> traces = parallel_map(cells.size(), 1, [&](std::size_t i) {
    const Cell& cell = cells[i];
    return run_one(*cell.method, *cell.task, *cell.gpu, options, &seconds[i]);
  });
  if (gpu_seconds) *gpu_seconds = std::move(seconds);
  return traces;
}

tuning::SessionOptions e2e_session_options() {
  tuning::SessionOptions o;
  o.max_trials = 320;
  o.batch_size = 8;
  o.plateau_trials = 44;
  return o;
}

int finish() {
  if (tuning::ResultCache* cache = env_result_cache()) {
    tuning::ResultCacheStats cs = cache->stats();
    std::printf("result cache (GLIMPSE_RESULT_CACHE): %llu hit(s), "
                "%llu miss(es), %llu insert(s), %llu entr%s\n",
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                static_cast<unsigned long long>(cs.inserts),
                static_cast<unsigned long long>(cache->size()),
                cache->size() == 1 ? "y" : "ies");
    if (!cache->options().path.empty() && !cache->compact())
      std::fprintf(stderr, "result cache: compaction failed\n");
  }
  if (telemetry::metrics_enabled()) {
    std::string summary = telemetry::metrics_summary();
    if (!summary.empty())
      std::printf("\n--- telemetry metrics (GLIMPSE_METRICS) ---\n%s",
                  summary.c_str());
  }
  for (const std::string& path : telemetry::export_to_env_paths())
    std::printf("telemetry: wrote %s\n", path.c_str());
  if (telemetry::num_dropped_events() > 0)
    std::fprintf(stderr, "telemetry: trace truncated, %llu event(s) dropped\n",
                 static_cast<unsigned long long>(telemetry::num_dropped_events()));
  return 0;
}

std::string fmt(double v, int digits) { return strformat("%.*f", digits, v); }
std::string fmt_pct(double fraction, int digits) {
  return strformat("%.*f%%", digits, fraction * 100.0);
}
std::string fmt_ratio(double v, int digits) { return strformat("%.*fx", digits, v); }

}  // namespace glimpse::bench
