// Ablation study of Glimpse's three Blueprint-driven components (the design
// choices DESIGN.md calls out):
//   * prior distributions from H          (§3.1)
//   * neural acquisition / meta-optimizer (§3.2)
//   * validity-ensemble sampling          (§3.3)
// plus a sweep of the rejection threshold tau (paper: tau = 1/3 via grid
// search). Not a paper figure — it substantiates the paper's claim that the
// gains come from the *collaboration* of the three components (§4.4).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace glimpse;

namespace {

struct VariantResult {
  double gflops_100 = 0.0;   ///< geomean best GFLOPS after 100 trials
  double invalid_frac = 0.0;
  double search_s = 0.0;
};

VariantResult run_variant(const bench::Method& method, const bench::Setup& setup,
                          const std::vector<const hwspec::GpuSpec*>& gpus) {
  tuning::SessionOptions opts;
  opts.max_trials = 100;
  opts.batch_size = 8;
  std::vector<double> gf;
  std::size_t invalid = 0, total = 0;
  double search_s = 0.0;
  for (const auto* gpu : gpus) {
    for (const auto& model : setup.models) {
      for (const auto* task : setup.representative_tasks(model)) {
        double gpu_s = 0.0;
        auto trace = bench::run_one(method, *task, *gpu, opts, &gpu_s);
        gf.push_back(std::max(1e-3, trace.best_gflops()));
        invalid += trace.num_invalid();
        total += trace.trials.size();
        search_s += gpu_s;
      }
    }
  }
  VariantResult r;
  r.gflops_100 = geomean(gf);
  r.invalid_frac = total ? static_cast<double>(invalid) / total : 0.0;
  r.search_s = search_s;
  return r;
}

}  // namespace

int main() {
  std::printf("=== Ablation: Glimpse component contributions & tau sweep ===\n\n");

  bench::Setup setup = bench::make_setup();
  bench::Pretrained pre = bench::pretrain(setup);
  std::vector<const hwspec::GpuSpec*> gpus = {hwspec::find_gpu("Titan Xp"),
                                              hwspec::find_gpu("RTX 2080 Ti")};

  struct Variant {
    const char* label;
    core::GlimpseOptions options;
  };
  std::vector<Variant> variants;
  variants.push_back({"full Glimpse", {}});
  {
    core::GlimpseOptions o;
    o.use_prior = false;
    variants.push_back({"- prior (H)", o});
  }
  {
    core::GlimpseOptions o;
    o.use_meta = false;
    variants.push_back({"- meta-optimizer", o});
  }
  {
    core::GlimpseOptions o;
    o.use_validity = false;
    variants.push_back({"- validity ensemble", o});
  }
  {
    core::GlimpseOptions o;
    o.use_prior = o.use_meta = o.use_validity = false;
    variants.push_back({"- all (surrogate-only)", o});
  }

  std::printf("--- Component ablation (100-trial budget, geomean over %zu GPUs x\n"
              "    representative tasks of 3 models) ---\n",
              gpus.size());
  TextTable table({"variant", "GFLOPS@100 (geomean)", "invalid fraction",
                   "search time (sim s)"});
  double full_gflops = 0.0;
  for (const auto& v : variants) {
    auto method = bench::glimpse_method(pre, v.options);
    method.name = std::string("Glimpse[") + v.label + "]";
    VariantResult r = run_variant(method, setup, gpus);
    if (full_gflops == 0.0) full_gflops = r.gflops_100;
    table.add(v.label, bench::fmt(r.gflops_100, 0) + "  (" +
                           bench::fmt_pct(r.gflops_100 / full_gflops) + ")",
              bench::fmt_pct(r.invalid_frac), bench::fmt(r.search_s, 0));
    std::fprintf(stderr, "[ablation] %s done\n", v.label);
  }
  table.print(std::cout);

  // tau sweep: with 3 predictors per dimension, tau in {0, 1/3, 2/3} means
  // reject on >=1, >=2, or 3 invalid votes respectively.
  std::printf("\n--- tau sweep for Hardware-Aware Sampling (paper picks 1/3) ---\n");
  TextTable tsweep({"tau", "GFLOPS@100 (geomean)", "invalid fraction"});
  for (double tau : {0.0, 1.0 / 3.0, 2.0 / 3.0}) {
    core::ValidityEnsembleOptions vo;
    vo.tau = tau;
    auto validity = std::make_shared<core::ValidityEnsemble>(*pre.artifacts.encoder,
                                                             setup.train_gpus, vo);
    core::GlimpseArtifacts arts = pre.artifacts;
    arts.validity = validity;
    auto method = bench::Method{"Glimpse", core::glimpse_factory(arts, {})};
    VariantResult r = run_variant(method, setup, gpus);
    tsweep.add(bench::fmt(tau, 3), bench::fmt(r.gflops_100, 0),
               bench::fmt_pct(r.invalid_frac));
  }
  tsweep.print(std::cout);

  std::printf(
      "\nReading: the prior and the validity ensemble carry most of the gain\n"
      "(quality and invalid-rate respectively) and dropping everything\n"
      "degrades both badly — matching the paper's attribution of the wins to\n"
      "the components' collaboration (4.4). The meta-optimizer's effect at a\n"
      "fixed 100-trial budget is within run-to-run noise; it matters for\n"
      "*when* to stop exploring, which the fig6/fig9 protocols expose. The\n"
      "tau sweep is flat here because the threshold predictors agree on\n"
      "nearly every configuration; tau guards against predictor outliers on\n"
      "less-typical hardware.\n");
  return bench::finish();
}
