// Figure 4: quality of the first 100 sampled configurations for Random,
// AutoTVM, Chameleon, and Glimpse on four representative (GPU, model, task)
// combinations. The paper plots the 100 sorted GFLOPS values per method;
// we print quartiles of each sorted curve plus the best value.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace glimpse;

namespace {

std::vector<double> initial_gflops(const bench::Method& method,
                                   const searchspace::Task& task,
                                   const hwspec::GpuSpec& hw, std::size_t n) {
  tuning::SessionOptions opts;
  opts.max_trials = n;
  opts.batch_size = 8;
  auto trace = bench::run_one(method, task, hw, opts);
  std::vector<double> gf;
  for (const auto& t : trace.trials)
    gf.push_back(t.result.valid ? t.result.gflops : 0.0);
  gf.resize(n, 0.0);
  std::sort(gf.rbegin(), gf.rend());
  return gf;
}

}  // namespace

int main() {
  std::printf("=== Figure 4: initial sampled configurations (100 per method) ===\n");
  std::printf("Sorted-curve summary: best / p25 / median / p75 of 100 samples, "
              "in GFLOPS.\n\n");

  bench::Setup setup = bench::make_setup();
  bench::Pretrained pre = bench::pretrain(setup);

  struct Combo {
    const char* gpu;
    std::size_t model;   // index into setup.models
    std::size_t task;    // 0-based task index
    const char* label;
  };
  // The paper's four panels: Titan Xp/ResNet-18/L7, 2070S/ResNet-18/L12,
  // 2080Ti/VGG-16/L17, 3090/AlexNet/L8.
  const std::vector<Combo> combos = {
      {"Titan Xp", 1, 6, "Titan Xp / ResNet-18 / L7"},
      {"RTX 2070 Super", 1, 11, "RTX 2070 Super / ResNet-18 / L12"},
      {"RTX 2080 Ti", 2, 16, "RTX 2080 Ti / VGG-16 / L17"},
      {"RTX 3090", 0, 7, "RTX 3090 / AlexNet / L8"},
  };

  std::vector<bench::Method> methods = {
      bench::random_method(), bench::autotvm_method(pre),
      bench::chameleon_method(pre), bench::glimpse_method(pre)};

  for (const auto& combo : combos) {
    const auto* gpu = hwspec::find_gpu(combo.gpu);
    const auto& task = setup.models[combo.model].task(combo.task);
    std::printf("--- %s (%s) ---\n", combo.label, task.name().c_str());
    TextTable table({"method", "best", "p25", "median", "p75", "valid/100"});
    for (const auto& m : methods) {
      auto gf = initial_gflops(m, task, *gpu, 100);
      std::size_t valid = 0;
      for (double v : gf)
        if (v > 0.0) ++valid;
      table.add(m.name, bench::fmt(gf[0], 0), bench::fmt(gf[24], 0),
                bench::fmt(gf[49], 0), bench::fmt(gf[74], 0), std::to_string(valid));
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf("Expected shape (paper): Glimpse's curve dominates — its prior-driven\n"
              "initial samples start near-optimal while the blind methods ramp up.\n");
  return bench::finish();
}
