// Serial-vs-parallel throughput for every path wired through the thread
// pool (common/parallel.hpp): blocked linalg, GP kernel construction, the
// surrogate ensemble, multi-chain annealing, and the figure-harness grid
// fan-out (a scaled-down Fig. 6 sweep). Each path runs with the pool forced
// to one thread and again at the configured width (GLIMPSE_NUM_THREADS or
// hardware_concurrency); results go to stdout and BENCH_parallel.json.
//
// Determinism spot-checks ride along: paths with comparable outputs assert
// that the 1-thread and N-thread runs agree before timing is reported.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/json_writer.hpp"
#include "common/parallel.hpp"
#include "gp/gp_regression.hpp"
#include "gp/kernel.hpp"
#include "linalg/simd.hpp"
#include "tuning/dataset.hpp"

namespace {

using namespace glimpse;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Min-of-5 wall time of fn, after two untimed warm-up runs. Warm-ups fault
/// in code, page tables and the pool's worker threads before anything is
/// timed; the minimum over repeats is the stablest estimator of intrinsic
/// cost under scheduler noise (noise only ever adds time), which is what a
/// regression gate needs to threshold against.
double time_ms(const std::function<void()>& fn) {
  for (int w = 0; w < 2; ++w) fn();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < 5; ++r) {
    double t0 = now_ms();
    fn();
    best = std::min(best, now_ms() - t0);
  }
  return best;
}

struct PathResult {
  std::string name;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
};

// ---- fixtures (small offline pretrain, shared across paths) ----

struct Fixture {
  std::vector<searchspace::Task> tasks;
  std::vector<const hwspec::GpuSpec*> train_gpus;
  core::GlimpseArtifacts artifacts;

  Fixture() {
    searchspace::ConvShape conv;
    conv.c = 256; conv.h = 14; conv.w = 14; conv.k = 256;
    conv.kh = 3; conv.kw = 3; conv.stride = 1; conv.pad = 1;
    tasks.emplace_back("micro.conv", searchspace::TemplateKind::kConv2d, conv);
    searchspace::DenseShape dense;
    dense.batch = 1; dense.in_dim = 4096; dense.out_dim = 1000;
    tasks.emplace_back("micro.dense", dense);

    train_gpus = hwspec::training_gpus({"RTX 2080 Ti"});
    if (train_gpus.size() > 6) train_gpus.resize(6);

    Rng rng(7);
    std::vector<const searchspace::Task*> task_ptrs;
    for (const auto& t : tasks) task_ptrs.push_back(&t);
    auto dataset = tuning::OfflineDataset::generate(task_ptrs, train_gpus, 80, rng);
    core::PriorTrainOptions po;
    po.epochs = 6;
    core::MetaTrainOptions mo;
    mo.max_groups = 8;
    mo.epochs = 6;
    artifacts = core::pretrain_glimpse(dataset, train_gpus,
                                       core::default_blueprint_dim(), rng, po, mo);
  }
};

linalg::Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  return m;
}

}  // namespace

int main() {
  std::printf("=== micro_parallel: serial vs parallel throughput ===\n\n");

  set_num_threads(0);
  const std::size_t n_par = num_threads();
  std::printf("pool width: %zu thread(s) (GLIMPSE_NUM_THREADS to override)\n\n",
              n_par);

  Fixture fx;
  std::vector<PathResult> results;
  auto measure = [&](const std::string& name, const std::function<void()>& fn) {
    PathResult r;
    r.name = name;
    set_num_threads(1);
    r.serial_ms = time_ms(fn);
    set_num_threads(n_par);
    r.parallel_ms = time_ms(fn);
    std::printf("%-24s serial %8.1f ms   parallel %8.1f ms   speedup %.2fx\n",
                name.c_str(), r.serial_ms, r.parallel_ms,
                r.serial_ms / std::max(1e-9, r.parallel_ms));
    results.push_back(r);
  };

  // 0. Pool dispatch overhead: many near-empty chunks. The parallel time
  //    divided by the chunk count is the per-chunk dispatch cost (atomic
  //    claim + submit/notify share) that linalg's kGrainFlops is sized to
  //    amortize; re-measure here when retuning the grain model (DESIGN §12).
  {
    constexpr std::size_t kChunks = 4096;
    constexpr int kReps = 8;
    std::vector<std::uint64_t> sink(kChunks);
    measure("pool_dispatch", [&] {
      for (int rep = 0; rep < kReps; ++rep)
        parallel_for_chunks(0, kChunks, 1,
                            [&](std::size_t b, std::size_t e, std::size_t chunk) {
                              sink[chunk] = b ^ e;
                            });
    });
    std::printf("  -> dispatch cost ~%.2f us/chunk at width %zu\n",
                results.back().parallel_ms * 1e3 / (kChunks * kReps), n_par);
  }

  // 1. Blocked + parallel matmul / matvec, plus a SIMD-path consistency
  //    check: the explicit kernels must match the scalar fallback bit for
  //    bit (same accumulator tree), or the runtime toggle would change
  //    results.
  {
    Rng rng(11);
    linalg::Matrix a = random_matrix(224, 192, rng);
    linalg::Matrix b = random_matrix(192, 208, rng);
    const bool simd_default = linalg::simd_enabled();
    linalg::set_simd_enabled(true);
    linalg::Matrix c_simd = linalg::matmul(a, b);
    linalg::set_simd_enabled(false);
    linalg::Matrix c_scalar = linalg::matmul(a, b);
    linalg::set_simd_enabled(simd_default);
    if (std::memcmp(c_simd.data().data(), c_scalar.data().data(),
                    c_simd.data().size() * sizeof(double)) != 0) {
      std::fprintf(stderr, "FATAL: SIMD and scalar matmul disagree bitwise\n");
      return 1;
    }
    measure("linalg_matmul", [&] {
      for (int i = 0; i < 20; ++i) linalg::matmul(a, b);
    });
    linalg::Matrix m = random_matrix(768, 512, rng);
    linalg::Vector x(512, 0.5);
    measure("linalg_matvec", [&] {
      for (int i = 0; i < 400; ++i) linalg::matvec(m, x);
    });
  }

  // 2. GP kernel-matrix construction + solve.
  {
    Rng rng(13);
    linalg::Matrix x = random_matrix(240, 16, rng);
    linalg::Vector y(240);
    for (auto& v : y) v = rng.normal();
    measure("gp_fit", [&] {
      gp::GpRegressor gpr(std::make_unique<gp::Matern52Kernel>(1.0, 1.0), 1e-4);
      gpr.fit(x, y);
    });
  }

  // 3. Surrogate ensemble fit and batch prediction.
  {
    Rng rng(17);
    const auto& task = fx.tasks[0];
    std::vector<linalg::Vector> rows;
    linalg::Vector y;
    for (int i = 0; i < 192; ++i) {
      auto c = task.space().random_config(rng);
      rows.push_back(searchspace::config_features(task, c));
      y.push_back(rng.uniform());
    }
    linalg::Matrix x = linalg::Matrix::from_rows(rows);
    core::SurrogateOptions so;
    so.ensemble = 4;
    measure("surrogate_fit", [&] {
      Rng fit_rng(23);
      core::NeuralSurrogate s(x.cols(), fit_rng, so);
      s.fit(x, y, fit_rng);
    });
    Rng fit_rng(23);
    core::NeuralSurrogate s(x.cols(), fit_rng, so);
    s.fit(x, y, fit_rng);
    std::vector<linalg::Vector> brows;
    for (int i = 0; i < 2048; ++i)
      brows.push_back(searchspace::config_features(
          task, task.space().random_config(rng)));
    linalg::Matrix bx = linalg::Matrix::from_rows(brows);
    measure("surrogate_predict_batch", [&] { s.predict_batch(bx); });
  }

  // 4. Multi-chain simulated annealing (surrogate-priced energy), with a
  //    determinism check: the 1-thread and N-thread walks must be identical.
  {
    Rng rng(29);
    const auto& task = fx.tasks[0];
    std::vector<linalg::Vector> rows;
    linalg::Vector y;
    for (int i = 0; i < 64; ++i) {
      auto c = task.space().random_config(rng);
      rows.push_back(searchspace::config_features(task, c));
      y.push_back(rng.uniform());
    }
    Rng fit_rng(31);
    core::NeuralSurrogate s(rows[0].size(), fit_rng);
    s.fit(linalg::Matrix::from_rows(rows), y, fit_rng);
    // One packed predict per lockstep round — the batched call-site shape
    // the tuners use in production.
    tuning::BatchScoreFn score = [&](const std::vector<searchspace::Config>& cs) {
      std::vector<linalg::Vector> rows(cs.size());
      parallel_for(0, cs.size(), 8, [&](std::size_t i) {
        rows[i] = searchspace::config_features(task, cs[i]);
      });
      auto preds = s.predict_batch(linalg::Matrix::from_rows(rows));
      std::vector<double> out(preds.size());
      for (std::size_t i = 0; i < preds.size(); ++i) out[i] = preds[i].mean;
      return out;
    };
    tuning::SaOptions opts;
    opts.num_chains = 32;
    opts.num_steps = 64;
    auto run_sa = [&] {
      Rng sa_rng(37);
      return tuning::simulated_annealing(task.space(), score, 32, sa_rng, opts);
    };
    set_num_threads(1);
    auto serial = run_sa();
    set_num_threads(n_par);
    auto parallel = run_sa();
    if (serial.configs != parallel.configs || serial.scores != parallel.scores) {
      std::fprintf(stderr, "FATAL: SA results differ between 1 and %zu threads\n",
                   n_par);
      return 1;
    }
    measure("sa_multi_chain", [&] { run_sa(); });
  }

  // 5. Figure-harness grid fan-out: a scaled-down Fig. 6 search-steps sweep
  //    (3 methods x 2 tasks x 2 GPUs), with a cross-thread-count
  //    determinism check on the traces.
  {
    std::vector<bench::Method> methods = {
        {"AutoTVM", baselines::autotvm_factory()},
        {"Chameleon", baselines::chameleon_factory()},
        {"Glimpse", core::glimpse_factory(fx.artifacts)}};
    std::vector<const hwspec::GpuSpec*> gpus = {hwspec::find_gpu("Titan Xp"),
                                                hwspec::find_gpu("RTX 2080 Ti")};
    tuning::SessionOptions opts;
    opts.max_trials = 96;
    opts.batch_size = 8;
    std::vector<bench::Cell> cells;
    for (const auto* gpu : gpus)
      for (const auto& task : fx.tasks)
        for (const auto& m : methods) cells.push_back({&m, &task, gpu});
    auto best_vector = [&](const std::vector<tuning::Trace>& traces) {
      std::vector<double> best;
      for (const auto& t : traces) best.push_back(t.best_gflops());
      return best;
    };
    set_num_threads(1);
    auto serial_best = best_vector(bench::run_cells(cells, opts));
    set_num_threads(n_par);
    auto parallel_best = best_vector(bench::run_cells(cells, opts));
    if (serial_best != parallel_best) {
      std::fprintf(stderr,
                   "FATAL: fig6-style sweep differs between 1 and %zu threads\n",
                   n_par);
      return 1;
    }
    measure("fig6_grid", [&] { bench::run_cells(cells, opts); });
  }

  set_num_threads(0);

  // Emit machine-readable results.
  const char* out_path = "BENCH_parallel.json";
  if (std::ofstream f{out_path}) {
    JsonWriter w(f);
    w.begin_object();
    w.kv("threads_serial", std::uint64_t{1});
    w.kv("threads_parallel", static_cast<std::uint64_t>(n_par));
    // The regression gate (tools/check_bench_json.py --check-speedup) skips
    // speedup thresholds when the hardware cannot express the parallelism.
    w.kv("hardware_concurrency",
         static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
    w.kv("simd_compiled", linalg::simd_compiled());
    w.kv("simd_enabled", linalg::simd_enabled());
    w.key("paths");
    w.begin_array();
    for (const auto& r : results) {
      w.begin_object();
      w.kv("name", r.name);
      w.kv_fixed("serial_ms", r.serial_ms, 3);
      w.kv_fixed("parallel_ms", r.parallel_ms, 3);
      w.kv_fixed("speedup", r.serial_ms / std::max(1e-9, r.parallel_ms), 3);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.done();
    std::printf("\nwrote %s\n", out_path);
  }
  return bench::finish();
}
