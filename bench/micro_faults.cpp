// Robustness bench: session behaviour and overhead under injected faults.
//
// Sweeps the transient-fault rate over a fixed tuning workload and reports,
// per rate: faulted/recovered trial counts, achieved GFLOPS, simulated GPU
// seconds (retries + backoff are charged to the simulated clock), and wall
// time. Two extra rows quantify the crash-safety machinery itself: one runs
// with per-batch checkpointing on to price the snapshot writes, and one
// kills the session halfway, resumes from the snapshot, and verifies the
// resumed trace is bit-identical to the uninterrupted run.
//
// Results go to stdout and BENCH_faults.json (validated by
// tools/check_bench_json.py --kind faults).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/random_tuner.hpp"
#include "common/json_writer.hpp"
#include "gpusim/faulty_measurer.hpp"
#include "hwspec/database.hpp"
#include "searchspace/models.hpp"
#include "tuning/checkpoint.hpp"
#include "tuning/session.hpp"

namespace {

using namespace glimpse;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Row {
  std::string name;
  double p_transient = 0.0;
  std::size_t trials = 0;
  std::size_t faulted = 0;
  std::size_t recovered = 0;  ///< trials that needed >1 attempt and succeeded
  std::uint64_t injected = 0;
  double best_gflops = 0.0;
  double gpu_seconds = 0.0;
  double wall_ms = 0.0;
  bool checkpointed = false;
  bool resume_bit_identical = true;  ///< only meaningful for the resume row
};

struct Workload {
  searchspace::Task task;
  const hwspec::GpuSpec* gpu;
};

Workload make_workload() {
  searchspace::ConvShape conv;
  conv.c = 256;
  conv.h = 14;
  conv.w = 14;
  conv.k = 256;
  conv.kh = 3;
  conv.kw = 3;
  conv.stride = 1;
  conv.pad = 1;
  const hwspec::GpuSpec* gpu = hwspec::find_gpu("Titan Xp");
  if (!gpu) gpu = hwspec::evaluation_gpus().front();
  return {searchspace::Task("faults.conv", searchspace::TemplateKind::kConv2d, conv),
          gpu};
}

tuning::SessionOptions session_options() {
  tuning::SessionOptions o;
  o.max_trials = 96;
  o.batch_size = 8;
  return o;
}

Row run_row(const Workload& w, const std::string& name, const gpusim::FaultPlan& plan,
            tuning::SessionOptions opts) {
  baselines::RandomTuner tuner(w.task, *w.gpu, 71);
  gpusim::SimMeasurer sim;
  gpusim::FaultInjector injector(sim, plan);
  double t0 = now_ms();
  tuning::Trace trace = tuning::run_session(tuner, w.task, *w.gpu, injector, opts);
  Row r;
  r.name = name;
  r.p_transient = plan.p_transient;
  r.wall_ms = now_ms() - t0;
  r.trials = trace.trials.size();
  r.faulted = trace.num_faulted();
  for (const auto& t : trace.trials)
    r.recovered += t.result.attempts > 1 &&
                   t.result.error == gpusim::MeasureError::kNone;
  r.injected = injector.num_failures();
  r.best_gflops = trace.best_gflops();
  r.gpu_seconds = sim.elapsed_seconds();
  r.checkpointed = !opts.checkpoint_path.empty();
  return r;
}

void print_row(const Row& r) {
  std::printf(
      "%-22s p=%.2f  trials %3zu  faulted %3zu  recovered %3zu  injected %4llu"
      "  best %8.1f GFLOPS  gpu %8.1f s  wall %7.1f ms%s\n",
      r.name.c_str(), r.p_transient, r.trials, r.faulted, r.recovered,
      static_cast<unsigned long long>(r.injected), r.best_gflops, r.gpu_seconds,
      r.wall_ms, r.checkpointed ? "  [ckpt]" : "");
}

}  // namespace

int main() {
  std::printf("=== micro_faults: tuning sessions under fault injection ===\n\n");
  Workload w = make_workload();
  std::vector<Row> rows;

  // Fault-rate sweep, no checkpointing.
  for (double p : {0.0, 0.05, 0.2, 0.5}) {
    gpusim::FaultPlan plan;
    plan.p_transient = p;
    char name[32];
    std::snprintf(name, sizeof(name), "transient_p%.2f", p);
    rows.push_back(run_row(w, name, plan, session_options()));
    print_row(rows.back());
  }

  // Checkpoint overhead: the 20 % row again with per-batch snapshots.
  std::string ckpt = "BENCH_faults_checkpoint.txt";
  {
    gpusim::FaultPlan plan;
    plan.p_transient = 0.2;
    tuning::SessionOptions opts = session_options();
    opts.checkpoint_path = ckpt;
    rows.push_back(run_row(w, "transient_p0.20_ckpt", plan, opts));
    print_row(rows.back());
  }

  // Kill at half budget, resume from the snapshot, verify bit-identity
  // against the uninterrupted 20 % run.
  {
    gpusim::FaultPlan plan;
    plan.p_transient = 0.2;
    tuning::SessionOptions full = session_options();
    tuning::Trace ref;
    {
      baselines::RandomTuner tuner(w.task, *w.gpu, 71);
      gpusim::SimMeasurer sim;
      gpusim::FaultInjector injector(sim, plan);
      ref = tuning::run_session(tuner, w.task, *w.gpu, injector, full);
    }
    {
      baselines::RandomTuner tuner(w.task, *w.gpu, 71);
      gpusim::SimMeasurer sim;
      gpusim::FaultInjector injector(sim, plan);
      tuning::SessionOptions half = full;
      half.max_trials = full.max_trials / 2;
      half.checkpoint_path = ckpt;
      tuning::run_session(tuner, w.task, *w.gpu, injector, half);
    }
    baselines::RandomTuner tuner(w.task, *w.gpu, 71);
    gpusim::SimMeasurer sim;
    gpusim::FaultInjector injector(sim, plan);
    tuning::SessionOptions resume = full;
    resume.resume_from = ckpt;
    double t0 = now_ms();
    tuning::Trace resumed = tuning::run_session(tuner, w.task, *w.gpu, injector, resume);
    Row r;
    r.name = "transient_p0.20_resume";
    r.p_transient = 0.2;
    r.wall_ms = now_ms() - t0;
    r.trials = resumed.trials.size();
    r.faulted = resumed.num_faulted();
    r.injected = injector.num_failures();
    r.best_gflops = resumed.best_gflops();
    r.gpu_seconds = sim.elapsed_seconds();
    r.checkpointed = true;
    r.resume_bit_identical = resumed.trials.size() == ref.trials.size();
    for (std::size_t i = 0; r.resume_bit_identical && i < ref.trials.size(); ++i)
      r.resume_bit_identical = resumed.trials[i] == ref.trials[i];
    rows.push_back(r);
    print_row(r);
    std::printf("%-22s resume bit-identical: %s\n", "",
                r.resume_bit_identical ? "yes" : "NO — DETERMINISM BROKEN");
    std::remove(ckpt.c_str());
    std::remove(tuning::journal_path(ckpt).c_str());
  }

  const char* out_path = "BENCH_faults.json";
  if (std::ofstream f{out_path}) {
    JsonWriter jw(f);
    jw.begin_object();
    jw.kv("max_trials", static_cast<std::uint64_t>(session_options().max_trials));
    jw.kv("batch_size", static_cast<std::uint64_t>(session_options().batch_size));
    jw.key("fault_paths");
    jw.begin_array();
    for (const Row& r : rows) {
      jw.begin_object();
      jw.kv("name", r.name);
      jw.kv_fixed("p_transient", r.p_transient, 3);
      jw.kv("trials", static_cast<std::uint64_t>(r.trials));
      jw.kv("faulted", static_cast<std::uint64_t>(r.faulted));
      jw.kv("recovered", static_cast<std::uint64_t>(r.recovered));
      jw.kv("injected_failures", r.injected);
      jw.kv_fixed("best_gflops", r.best_gflops, 2);
      jw.kv_fixed("gpu_seconds", r.gpu_seconds, 2);
      jw.kv_fixed("wall_ms", r.wall_ms, 3);
      jw.kv("checkpointed", r.checkpointed);
      jw.kv("resume_bit_identical", r.resume_bit_identical);
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();
    jw.done();
    std::printf("\nwrote %s\n", out_path);
  }
  return 0;
}
