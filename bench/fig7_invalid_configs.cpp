// Figure 7: reduction in invalid configurations relative to AutoTVM
// (higher is better). Each method tunes the same tasks; we count invalid
// measurements and report AutoTVM's invalid fraction divided by each
// method's. (Paper geomeans: Chameleon 1.23x, Glimpse 5.56x; §4.3 notes
// ~10% of AutoTVM's measurements are invalid.)
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace glimpse;

int main() {
  std::printf("=== Figure 7: reduction in invalid configurations vs AutoTVM ===\n\n");

  bench::Setup setup = bench::make_setup();
  bench::Pretrained pre = bench::pretrain(setup);

  std::vector<bench::Method> methods = {bench::autotvm_method(pre),
                                        bench::chameleon_method(pre),
                                        bench::glimpse_method(pre)};

  tuning::SessionOptions opts;
  opts.max_trials = 192;
  opts.batch_size = 8;

  TextTable table({"GPU", "model", "AutoTVM invalid", "Chameleon redu.",
                   "Glimpse redu."});
  std::vector<double> cham_redu, glimpse_redu, autotvm_invalid;

  // Fan the whole sweep grid across the thread pool (cell order mirrors the
  // aggregation loops below).
  std::vector<bench::Cell> cells;
  for (const auto* gpu : setup.eval_gpus)
    for (const auto& model : setup.models)
      for (std::size_t mi = 0; mi < methods.size(); ++mi)
        for (const auto* task : setup.representative_tasks(model))
          cells.push_back({&methods[mi], task, gpu});
  std::vector<tuning::Trace> traces = bench::run_cells(cells, opts);

  std::size_t cell = 0;
  for (const auto* gpu : setup.eval_gpus) {
    for (const auto& model : setup.models) {
      std::vector<double> invalid_frac(methods.size(), 0.0);
      std::size_t trials_total = 0, invalid_total = 0;
      for (std::size_t mi = 0; mi < methods.size(); ++mi) {
        std::size_t inv = 0, tot = 0;
        for (const auto* task : setup.representative_tasks(model)) {
          (void)task;
          const auto& trace = traces[cell++];
          inv += trace.num_invalid();
          tot += trace.trials.size();
        }
        invalid_frac[mi] = tot ? static_cast<double>(inv) / tot : 0.0;
        if (mi == 0) {
          trials_total = tot;
          invalid_total = inv;
        }
      }
      (void)trials_total;
      (void)invalid_total;
      // Reduction = AutoTVM's invalid fraction / method's (guard zero).
      auto redu = [&](std::size_t mi) {
        return invalid_frac[0] / std::max(invalid_frac[mi], 1e-3);
      };
      table.add(gpu->name, model.model().name, bench::fmt_pct(invalid_frac[0]),
                bench::fmt_ratio(redu(1)), bench::fmt_ratio(redu(2)));
      autotvm_invalid.push_back(invalid_frac[0]);
      cham_redu.push_back(redu(1));
      glimpse_redu.push_back(redu(2));
    }
  }
  table.add("geomean", "", bench::fmt_pct(geomean(autotvm_invalid)),
            bench::fmt_ratio(geomean(cham_redu)),
            bench::fmt_ratio(geomean(glimpse_redu)));
  table.print(std::cout);

  std::printf("\nPaper: AutoTVM ~10%% invalid; reductions 1.23x (Chameleon) and\n"
              "5.56x (Glimpse); Glimpse also 4.53x over Chameleon.\n");
  std::printf("Measured Glimpse-over-Chameleon: %.2fx\n",
              geomean(glimpse_redu) / geomean(cham_redu));
  return bench::finish();
}
