// Fleet scaling bench: the same job mix against 1, 2, and 4 glimpsed
// shards, placed by the client-side ShardRing exactly as a fleet client
// would (the hot path bypasses the router; the router is control-plane).
//
// Method: a warm-up pass runs every job once against a single shard with a
// shared cache directory, recording the reference decisions and filling
// the shared tier. Each measured point then boots N fresh shards against
// that warm tier (their constructors sync it), places every job with the
// ring, and times submit-to-settle for the whole mix. Cache-warm, the
// measured cost is the serving stack itself — protocol framing, queue,
// scheduler rounds, cache lookups — which is what must scale with shards.
//
// Acceptance (checked in-binary, and by check_bench_json --kind fleet):
//   * every point completes every job, decisions bit-identical to the
//     single-shard reference (sharding must not change results);
//   * aggregate jobs/sec at 4 shards vs 1 is reported as scaling_4v1; the
//     CI gate (--check-fleet-scaling) requires >= 3.0 on hosts with >= 4
//     cores and skips elsewhere, so the number is recorded either way.
//
// Results go to stdout and BENCH_fleet.json.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/session_manager.hpp"
#include "service/shard_ring.hpp"

namespace {

using namespace glimpse;
using service::Client;
using service::JobSpec;
using service::JobSummary;
using service::Response;
using service::ResponseType;
using service::ShardRing;

constexpr std::uint64_t kMaxTrials = 16;
constexpr std::size_t kJobs = 48;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Distinct (task, gpu, seed) triples spread across 4 GPUs x 12 tasks so
/// the ring has real variety to place.
std::vector<JobSpec> workload() {
  static const char* kGpus[] = {"Titan Xp", "RTX 2070 Super", "RTX 2080 Ti",
                                "RTX 3090"};
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    JobSpec spec;
    spec.tuner = "random";
    spec.model = "resnet18";
    spec.task_index = i % 12;
    spec.gpu = kGpus[i % 4];
    spec.seed = 7000 + i;
    spec.max_trials = kMaxTrials;
    spec.batch_size = 8;
    jobs.push_back(spec);
  }
  return jobs;
}

/// One in-process shard: manager + server on a fresh Unix socket.
struct Shard {
  Shard(const std::string& name, const std::string& cache_dir, int index)
      : sock("/tmp/glimpse_micro_fleet_" + std::to_string(::getpid()) + "_" +
             std::to_string(index) + "_" + name + ".sock") {
    service::SessionManagerOptions mopts;
    mopts.slots = 1;  // scaling must come from shard count, not slots
    mopts.cache_shared_dir = cache_dir;
    mopts.shard_name = name;
    manager = std::make_unique<service::SessionManager>(mopts);
    server = std::make_unique<service::Server>(
        *manager, service::ServerOptions{sock, -1});
    server->start();
  }
  ~Shard() { server->stop(); }

  std::string sock;
  std::unique_ptr<service::SessionManager> manager;
  std::unique_ptr<service::Server> server;
};

struct ShardStats {
  std::string shard;
  std::uint64_t completed = 0;
  std::uint64_t cache_hits = 0;
};

struct Point {
  std::size_t daemons = 0;
  double wall_ms = 0.0;
  double jobs_per_s = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t cache_hits = 0;
  bool decisions_identical = true;
  std::vector<ShardStats> per_shard;
};

/// Key a job by its identity axes (ids differ per deployment).
std::uint64_t job_key(const JobSpec& s) { return s.seed; }

Point run_point(std::size_t daemons, int index, const std::string& cache_dir,
                const std::vector<JobSpec>& jobs,
                const std::map<std::uint64_t, JobSummary>& reference) {
  Point p;
  p.daemons = daemons;

  std::vector<std::string> names;
  std::vector<std::unique_ptr<Shard>> shards;
  std::map<std::string, std::size_t> by_name;
  for (std::size_t i = 0; i < daemons; ++i) {
    names.push_back("p" + std::to_string(index) + "s" + std::to_string(i));
    by_name[names.back()] = i;
    shards.push_back(std::make_unique<Shard>(names.back(), cache_dir,
                                             index * 8 + static_cast<int>(i)));
  }
  ShardRing ring(names);

  // One client thread per shard, each driving exactly the jobs the ring
  // places there: submit everything, then wait every result.
  std::vector<std::vector<const JobSpec*>> assigned(daemons);
  for (const JobSpec& j : jobs)
    assigned[by_name[ring.node_for_job(j)]].push_back(&j);

  std::vector<std::vector<JobSummary>> settled(daemons);
  const double t0 = now_ms();
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < daemons; ++s) {
    threads.emplace_back([&, s] {
      Client client = Client::connect_unix(shards[s]->sock);
      std::vector<std::uint64_t> ids;
      for (const JobSpec* spec : assigned[s]) {
        Response r = client.submit("bench", 0, *spec);
        if (r.type == ResponseType::kAccepted) ids.push_back(r.job_id);
      }
      for (std::uint64_t id : ids) {
        Response done = client.result(id, /*wait=*/true);
        if (done.type == ResponseType::kResult)
          settled[s].push_back(done.summary);
      }
    });
  }
  for (auto& t : threads) t.join();
  p.wall_ms = now_ms() - t0;

  for (std::size_t s = 0; s < daemons; ++s)
    p.completed += settled[s].size();

  // Bit-identity against the reference, matched by submission order (each
  // shard settles its own jobs in its own id order = submission order).
  p.decisions_identical = p.completed == jobs.size();
  for (std::size_t s = 0; s < daemons; ++s) {
    if (settled[s].size() != assigned[s].size()) {
      p.decisions_identical = false;
      continue;
    }
    for (std::size_t i = 0; i < settled[s].size(); ++i) {
      const JobSummary& got = settled[s][i];
      auto it = reference.find(job_key(*assigned[s][i]));
      if (it == reference.end()) {
        p.decisions_identical = false;
        continue;
      }
      const JobSummary& want = it->second;
      p.decisions_identical = p.decisions_identical && got.state == "done" &&
                              got.trials == want.trials &&
                              got.faulted == want.faulted &&
                              got.best_gflops == want.best_gflops &&  // bits
                              got.best_config == want.best_config;
    }
  }

  for (std::size_t s = 0; s < daemons; ++s) {
    Client c = Client::connect_unix(shards[s]->sock);
    Response stats = c.stats();
    ShardStats ss;
    ss.shard = names[s];
    ss.completed = stats.stats.completed;
    ss.cache_hits = stats.stats.cache_hits;
    p.cache_hits += ss.cache_hits;
    p.per_shard.push_back(ss);
  }
  p.jobs_per_s = p.wall_ms > 0.0
                     ? static_cast<double>(p.completed) * 1000.0 / p.wall_ms
                     : 0.0;
  return p;
}

}  // namespace

int main() {
  std::printf("=== micro_fleet: sharded glimpsed scaling ===\n\n");
  const unsigned cores = std::thread::hardware_concurrency();
  const std::vector<JobSpec> jobs = workload();

  const std::string cache_dir =
      "/tmp/glimpse_micro_fleet_cache_" + std::to_string(::getpid());
  std::filesystem::remove_all(cache_dir);

  // Warm-up pass: fill the shared tier and record reference decisions.
  std::map<std::uint64_t, JobSummary> reference;
  {
    Shard warm("warm", cache_dir, 99);
    Client client = Client::connect_unix(warm.sock);
    double t0 = now_ms();
    std::vector<std::uint64_t> ids;
    for (const JobSpec& spec : jobs) {
      Response r = client.submit("warm", 0, spec);
      if (r.type == ResponseType::kAccepted) ids.push_back(r.job_id);
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      Response done = client.result(ids[i], /*wait=*/true);
      if (done.type == ResponseType::kResult)
        reference[job_key(jobs[i])] = done.summary;
    }
    std::printf("warm-up          %zu jobs  wall %8.1f ms (cache-cold)\n",
                reference.size(), now_ms() - t0);
  }
  if (reference.size() != jobs.size()) {
    std::printf("warm-up failed to settle every job\n");
    return 1;
  }

  std::vector<Point> points;
  for (std::size_t daemons : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    points.push_back(run_point(daemons, static_cast<int>(points.size()),
                               cache_dir, jobs, reference));
    const Point& p = points.back();
    std::printf(
        "daemons %zu        %llu jobs  wall %8.1f ms  %8.1f jobs/s"
        "  hits %llu  identical %s\n",
        p.daemons, static_cast<unsigned long long>(p.completed), p.wall_ms,
        p.jobs_per_s, static_cast<unsigned long long>(p.cache_hits),
        p.decisions_identical ? "yes" : "NO");
  }

  const double scaling_4v1 = points.front().jobs_per_s > 0.0
                                 ? points.back().jobs_per_s /
                                       points.front().jobs_per_s
                                 : 0.0;
  bool identical = true;
  bool complete = true;
  for (const Point& p : points) {
    identical = identical && p.decisions_identical;
    complete = complete && p.completed == jobs.size();
  }
  std::printf("\nscaling 4v1: %.2fx on %u cores\n", scaling_4v1, cores);
  std::printf("acceptance (all jobs settle, decisions bit-identical across "
              "shard counts): %s\n",
              identical && complete ? "PASS" : "FAIL");

  const char* out_path = "BENCH_fleet.json";
  if (std::ofstream f{out_path}) {
    JsonWriter jw(f);
    jw.begin_object();
    jw.kv("hardware_concurrency", static_cast<std::uint64_t>(cores));
    jw.kv("jobs", static_cast<std::uint64_t>(kJobs));
    jw.kv("max_trials", kMaxTrials);
    jw.key("points");
    jw.begin_array();
    for (const Point& p : points) {
      jw.begin_object();
      jw.kv("daemons", static_cast<std::uint64_t>(p.daemons));
      jw.kv_fixed("wall_ms", p.wall_ms, 3);
      jw.kv_fixed("jobs_per_s", p.jobs_per_s, 3);
      jw.kv("completed", p.completed);
      jw.kv("cache_hits", p.cache_hits);
      jw.key("per_shard");
      jw.begin_array();
      for (const ShardStats& ss : p.per_shard) {
        jw.begin_object();
        jw.kv("shard", ss.shard);
        jw.kv("completed", ss.completed);
        jw.kv("cache_hits", ss.cache_hits);
        jw.end_object();
      }
      jw.end_array();
      jw.end_object();
    }
    jw.end_array();
    jw.kv_fixed("scaling_4v1", scaling_4v1, 3);
    jw.kv("decisions_identical", identical);
    jw.end_object();
    jw.done();
    std::printf("wrote %s\n", out_path);
  }
  std::filesystem::remove_all(cache_dir);
  return identical && complete ? 0 : 1;
}
