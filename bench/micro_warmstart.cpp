// Warm-start bench: cross-device cache transfer vs cold-start tuning.
//
// Five donor GPUs spanning three generations and SM counts from 30 to 72
// (Titan Xp, RTX 2070 Super, RTX 2070, RTX 2080, Titan RTX) tune the
// workload task first, their measurements landing in shared result-cache
// tiers as a --cache-shared fleet writes them. A held-out device
// (RTX 2080 Ti) then tunes
// the same task twice per arm: cold (today's behaviour) and warm (the
// WarmStartAdvisor mines the donor tiers, weights entries by Blueprint
// distance, and seeds the tuner's first proposals + surrogate priors).
//
// Metric: measurer invocations to reach the cold search's converged
// quality — the first trial at which each arm's best-so-far attains 95 % of
// the cold run's final best under the same fixed trial budget (the
// time-to-quality comparison AutoTVM-style papers report; the 5 % band
// absorbs the flat tail of the convergence curve, where single-percent
// nudges arrive tens of trials apart). A quality guard keeps the bar
// honest: the warm run's own final best must also reach 95 % of the cold
// run's ("same best-cost"), so warm-start cannot win the race and lose the
// destination. Without fault injection or a result cache every trial is
// exactly one measurer invocation, so the trial index is the invocation
// count. Acceptance (enforced by tools/check_bench_json.py
// --check-warmstart): every arm passes the quality guard with >= 50 %
// fewer invocations to parity (reduction >= 2x), and the warm run's
// decisions are bit-identical at 1 and 4 measurement threads — warm-start
// must accelerate the search, never perturb its determinism.
//
// Results go to stdout and BENCH_warmstart.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/autotvm.hpp"
#include "baselines/chameleon.hpp"
#include "common/json_writer.hpp"
#include "common/parallel.hpp"
#include "hwspec/database.hpp"
#include "searchspace/models.hpp"
#include "tuning/result_cache.hpp"
#include "tuning/session.hpp"
#include "tuning/warmstart.hpp"

namespace {

using namespace glimpse;

constexpr std::size_t kDonorTrials = 256;  ///< donor search depth per device
constexpr std::size_t kMaxTrials = 128;  ///< cold/warm arm budget
constexpr std::size_t kBatch = 8;
constexpr std::uint64_t kSeed = 1203;
constexpr std::size_t kTopK = 16;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Workload {
  searchspace::Task task;
  const hwspec::GpuSpec* target;
  std::vector<const hwspec::GpuSpec*> donors;
};

Workload make_workload() {
  searchspace::ConvShape conv;
  conv.c = 256;
  conv.h = 14;
  conv.w = 14;
  conv.k = 256;
  conv.kh = 3;
  conv.kw = 3;
  conv.stride = 1;
  conv.pad = 1;
  Workload w{searchspace::Task("warmstart.conv", searchspace::TemplateKind::kConv2d,
                               conv),
             hwspec::find_gpu("RTX 2080 Ti"),
             {hwspec::find_gpu("Titan Xp"), hwspec::find_gpu("RTX 2070 Super"),
              hwspec::find_gpu("RTX 2070"), hwspec::find_gpu("RTX 2080"),
              hwspec::find_gpu("Titan RTX")}};
  return w;
}

using TunerFactory =
    std::function<std::unique_ptr<tuning::Tuner>(const hwspec::GpuSpec&)>;

/// First 1-based trial index whose best-so-far reaches `goal`; 0 if never.
std::size_t trials_to(const tuning::Trace& tr, double goal) {
  double best = 0.0;
  for (std::size_t i = 0; i < tr.trials.size(); ++i) {
    const auto& t = tr.trials[i];
    if (t.result.valid && t.result.gflops > best) best = t.result.gflops;
    if (best >= goal) return i + 1;
  }
  return 0;
}

/// Donor corpus: each donor device tunes the task with its measurements
/// recorded into its own tier file, exactly as a fleet shard would.
void build_donor_tiers(const Workload& w, const std::string& dir,
                       const TunerFactory& make) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  for (std::size_t d = 0; d < w.donors.size(); ++d) {
    tuning::ResultCacheOptions copts;
    copts.path = dir + "/tier-donor" + std::to_string(d) + ".jsonl";
    copts.shared_dir = dir;
    tuning::ResultCache cache(copts);
    auto tuner = make(*w.donors[d]);
    gpusim::SimMeasurer sim;
    tuning::SessionOptions opts;
    opts.max_trials = kDonorTrials;
    opts.batch_size = kBatch;
    opts.result_cache = &cache;
    tuning::run_session(*tuner, w.task, *w.donors[d], sim, opts);
  }
}

tuning::Trace run_arm(const Workload& w, const TunerFactory& make,
                      const tuning::WarmStart* ws, std::size_t& measurements) {
  auto tuner = make(*w.target);
  gpusim::SimMeasurer sim;
  tuning::SessionOptions opts;
  opts.max_trials = kMaxTrials;
  opts.batch_size = kBatch;
  if (ws != nullptr) {
    opts.warm_configs = ws->configs;
    opts.warm_scores = ws->scores;
  }
  tuning::Trace tr = tuning::run_session(*tuner, w.task, *w.target, sim, opts);
  measurements += sim.num_measurements();
  return tr;
}

struct Arm {
  std::string name;
  std::size_t warm_seeds = 0;
  std::uint64_t donor_entries = 0;
  std::uint64_t donor_devices = 0;
  double cold_best_gflops = 0.0;
  double warm_best_gflops = 0.0;
  double parity_gflops = 0.0;        ///< 95 % of the cold run's final best
  std::size_t cold_invocations = 0;  ///< invocations until parity (cold)
  std::size_t warm_invocations = 0;  ///< invocations until parity (warm)
  double reduction = 0.0;
  bool quality_held = false;  ///< warm final best within 5 % of cold's
  bool decisions_identical = false;
  double wall_ms = 0.0;
};

Arm run_bench_arm(const Workload& w, const std::string& tier_dir,
                  const std::string& name, const TunerFactory& make) {
  Arm a;
  a.name = name;
  const double t0 = now_ms();

  tuning::WarmStartOptions wopts;
  wopts.shared_dir = tier_dir;
  wopts.top_k = kTopK;
  const tuning::WarmStartAdvisor advisor(wopts);
  const tuning::WarmStart ws = advisor.advise(w.task, *w.target);
  a.warm_seeds = ws.configs.size();
  a.donor_entries = ws.donor_entries;
  a.donor_devices = ws.donor_devices;

  std::size_t cold_meas = 0, warm_meas = 0, warm_meas4 = 0;
  const tuning::Trace cold = run_arm(w, make, nullptr, cold_meas);
  set_num_threads(1);
  const tuning::Trace warm = run_arm(w, make, &ws, warm_meas);
  set_num_threads(4);
  const tuning::Trace warm4 = run_arm(w, make, &ws, warm_meas4);
  set_num_threads(0);  // restore the environment default

  a.cold_best_gflops = cold.best_gflops();
  a.warm_best_gflops = warm.best_gflops();
  a.parity_gflops = 0.95 * a.cold_best_gflops;
  a.cold_invocations = trials_to(cold, a.parity_gflops);
  a.warm_invocations = trials_to(warm, a.parity_gflops);
  a.quality_held = a.warm_best_gflops >= a.parity_gflops;
  (void)cold_meas;
  (void)warm_meas;
  a.reduction = a.warm_invocations > 0
                    ? static_cast<double>(a.cold_invocations) /
                          static_cast<double>(a.warm_invocations)
                    : 0.0;
  a.decisions_identical = tuning::trace_decisions_identical(warm, warm4);
  a.wall_ms = now_ms() - t0;
  return a;
}

void print_arm(const Arm& a) {
  std::printf(
      "%-10s seeds %2zu (donors %llu entries / %llu devices)  best cold"
      " %7.1f / warm %7.1f  meas %4zu -> %4zu  reduction %5.1fx  quality %s"
      "  identical %s  wall %7.1f ms\n",
      a.name.c_str(), a.warm_seeds,
      static_cast<unsigned long long>(a.donor_entries),
      static_cast<unsigned long long>(a.donor_devices), a.cold_best_gflops,
      a.warm_best_gflops, a.cold_invocations, a.warm_invocations, a.reduction,
      a.quality_held ? "yes" : "NO", a.decisions_identical ? "yes" : "NO",
      a.wall_ms);
}

}  // namespace

int main() {
  std::printf("=== micro_warmstart: cross-device cache transfer ===\n\n");
  Workload w = make_workload();
  if (w.target == nullptr ||
      std::any_of(w.donors.begin(), w.donors.end(),
                  [](const hwspec::GpuSpec* g) { return g == nullptr; })) {
    std::printf("FAIL: evaluation GPUs missing from the database\n");
    return 1;
  }
  const std::string tier_dir = "bench_warmstart_tiers";

  // One donor corpus serves both arms: tier entries are tuner-agnostic
  // (task, device, config, result) records, exactly like a real fleet's
  // shared tier, which accumulates from whatever strategies ran before.
  TunerFactory autotvm = [&](const hwspec::GpuSpec& hw) {
    return std::make_unique<baselines::AutoTvmTuner>(w.task, hw, kSeed);
  };
  TunerFactory chameleon = [&](const hwspec::GpuSpec& hw) {
    return std::make_unique<baselines::ChameleonTuner>(w.task, hw, kSeed);
  };
  build_donor_tiers(w, tier_dir, autotvm);

  std::vector<Arm> arms;
  arms.push_back(run_bench_arm(w, tier_dir, "autotvm", autotvm));
  print_arm(arms.back());
  arms.push_back(run_bench_arm(w, tier_dir, "chameleon", chameleon));
  print_arm(arms.back());
  std::filesystem::remove_all(tier_dir);

  bool ok = true;
  for (const Arm& a : arms)
    ok = ok && a.quality_held && a.decisions_identical && a.reduction >= 2.0;
  std::printf(
      "\nacceptance (quality within 5 %% of cold, reduction >= 2x, decisions"
      " identical across thread counts): %s\n",
      ok ? "PASS" : "FAIL");

  const char* out_path = "BENCH_warmstart.json";
  if (std::ofstream f{out_path}) {
    JsonWriter jw(f);
    jw.begin_object();
    jw.kv("donor_trials", static_cast<std::uint64_t>(kDonorTrials));
    jw.kv("max_trials", static_cast<std::uint64_t>(kMaxTrials));
    jw.kv("batch_size", static_cast<std::uint64_t>(kBatch));
    jw.kv("top_k", static_cast<std::uint64_t>(kTopK));
    jw.key("arms");
    jw.begin_array();
    for (const Arm& a : arms) {
      jw.begin_object();
      jw.kv("name", a.name);
      jw.kv("warm_seeds", static_cast<std::uint64_t>(a.warm_seeds));
      jw.kv("donor_entries", a.donor_entries);
      jw.kv("donor_devices", a.donor_devices);
      jw.kv_fixed("cold_best_gflops", a.cold_best_gflops, 2);
      jw.kv_fixed("warm_best_gflops", a.warm_best_gflops, 2);
      jw.kv_fixed("parity_gflops", a.parity_gflops, 2);
      jw.kv("cold_invocations", static_cast<std::uint64_t>(a.cold_invocations));
      jw.kv("warm_invocations", static_cast<std::uint64_t>(a.warm_invocations));
      jw.kv_fixed("reduction", a.reduction, 2);
      jw.kv("quality_held", a.quality_held);
      jw.kv("decisions_identical", a.decisions_identical);
      jw.kv_fixed("wall_ms", a.wall_ms, 3);
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();
    jw.done();
    std::printf("wrote %s\n", out_path);
  }
  return ok ? 0 : 1;
}
