// Figure 6: number of search steps relative to AutoTVM (lower is better).
//
// Each method tunes with its own convergence criterion (plateau stopping,
// as the real systems do); its "search steps" are the measurements needed
// to reach within 1 % of its own final quality — the point where its Markov
// chains stop improving, which is what determines optimization time (§4.2).
// A quality column (final GFLOPS relative to AutoTVM's) shows that faster
// convergence does not come from converging to something worse.
// (Paper geomeans: Chameleon 50.3 %, Glimpse 19.7 % -> 5.07x / 2.55x
// step reductions.)
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace glimpse;

int main() {
  std::printf("=== Figure 6: search steps relative to AutoTVM (lower is better) ===\n\n");

  bench::Setup setup = bench::make_setup();
  bench::Pretrained pre = bench::pretrain(setup);

  std::vector<bench::Method> methods = {bench::autotvm_method(pre),
                                        bench::chameleon_method(pre),
                                        bench::glimpse_method(pre)};

  tuning::SessionOptions opts = bench::e2e_session_options();

  TextTable table({"GPU", "model", "AutoTVM", "Chameleon", "Glimpse (ours)",
                   "quality (C/G vs A)"});
  std::vector<double> cham_fracs, glimpse_fracs;

  // Fan the whole (GPU, model, task, method) grid across the thread pool;
  // traces come back in cell order, so the aggregation below just replays
  // the same nested loops.
  std::vector<bench::Cell> cells;
  for (const auto* gpu : setup.eval_gpus)
    for (const auto& model : setup.models)
      for (const auto* task : setup.representative_tasks(model))
        for (std::size_t mi = 0; mi < methods.size(); ++mi)
          cells.push_back({&methods[mi], task, gpu});
  std::vector<tuning::Trace> traces = bench::run_cells(cells, opts);

  std::size_t cell = 0;
  for (const auto* gpu : setup.eval_gpus) {
    for (const auto& model : setup.models) {
      std::vector<double> steps(methods.size(), 0.0);
      std::vector<double> quality(methods.size(), 0.0);
      for (const auto* task : setup.representative_tasks(model)) {
        (void)task;
        for (std::size_t mi = 0; mi < methods.size(); ++mi) {
          const auto& trace = traces[cell++];
          double best = trace.best_gflops();
          auto s = tuning::steps_to_reach(trace, best * 0.99);
          steps[mi] += static_cast<double>(s.value_or(trace.trials.size()));
          quality[mi] += best;
        }
      }
      double cf = steps[1] / steps[0];
      double gf = steps[2] / steps[0];
      table.add(gpu->name, model.model().name, "100.0%", bench::fmt_pct(cf),
                bench::fmt_pct(gf),
                bench::fmt(quality[1] / quality[0], 2) + " / " +
                    bench::fmt(quality[2] / quality[0], 2));
      cham_fracs.push_back(cf);
      glimpse_fracs.push_back(gf);
    }
  }
  double cham_gm = geomean(cham_fracs);
  double glimpse_gm = geomean(glimpse_fracs);
  table.add("geomean", "", "100.0%", bench::fmt_pct(cham_gm),
            bench::fmt_pct(glimpse_gm), "");
  table.print(std::cout);

  std::printf("\nReductions: Glimpse %.2fx vs AutoTVM, %.2fx vs Chameleon\n",
              1.0 / glimpse_gm, cham_gm / glimpse_gm);
  std::printf("Paper: 19.7%% / 50.3%% geomeans -> 5.07x and 2.55x reductions.\n");
  return bench::finish();
}
