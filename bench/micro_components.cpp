// Component micro-benchmarks (google-benchmark).
//
// Substantiates the paper's §3.3 complexity claim: Glimpse's threshold-based
// validity predictors are O(1) per configuration versus Chameleon's
// O(n*k*iters) clustering-based sampling — plus throughput numbers for the
// simulator, featurizers, cost models and annealing that set the bench
// suite's wall-clock budget.
#include <benchmark/benchmark.h>

#include "baselines/autotvm.hpp"
#include "glimpse/glimpse_tuner.hpp"
#include "gpusim/perf_model.hpp"
#include "hwspec/database.hpp"
#include "ml/kmeans.hpp"
#include "searchspace/models.hpp"
#include "tuning/dataset.hpp"
#include "tuning/sa.hpp"

namespace {

using namespace glimpse;

// ---- shared fixtures (built once; small training sizes for fast startup) ----

const searchspace::Task& conv_task() {
  static const searchspace::Task task = [] {
    searchspace::ConvShape s;
    s.c = 512; s.h = 7; s.w = 7; s.k = 512; s.kh = 3; s.kw = 3; s.stride = 1; s.pad = 1;
    return searchspace::Task("bench.conv", searchspace::TemplateKind::kConv2d, s);
  }();
  return task;
}

const hwspec::GpuSpec& gpu() { return *hwspec::find_gpu("RTX 2080 Ti"); }

struct MicroSetup {
  std::vector<const searchspace::Task*> tasks{&conv_task()};
  std::vector<const hwspec::GpuSpec*> train_gpus =
      hwspec::training_gpus({"RTX 2080 Ti"});
  tuning::OfflineDataset dataset;
  core::GlimpseArtifacts artifacts;

  MicroSetup() {
    Rng rng(1);
    dataset = tuning::OfflineDataset::generate(tasks, train_gpus, 100, rng);
    core::PriorTrainOptions po;
    po.epochs = 6;
    core::MetaTrainOptions mo;
    mo.max_groups = 8;
    mo.epochs = 6;
    artifacts = core::pretrain_glimpse(dataset, train_gpus,
                                       core::default_blueprint_dim(), rng, po, mo);
  }
};

MicroSetup& setup() {
  static MicroSetup s;
  return s;
}

std::vector<searchspace::Config> random_configs(std::size_t n) {
  Rng rng(2);
  std::vector<searchspace::Config> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(conv_task().space().random_config(rng));
  return out;
}

// ---- simulator ----

void BM_SimulatorEstimate(benchmark::State& state) {
  auto configs = random_configs(256);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpusim::estimate(conv_task(), configs[i++ % 256], gpu()));
  }
}
BENCHMARK(BM_SimulatorEstimate);

void BM_ConfigFeaturize(benchmark::State& state) {
  auto configs = random_configs(256);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(searchspace::config_features(conv_task(), configs[i++ % 256]));
  }
}
BENCHMARK(BM_ConfigFeaturize);

void BM_BlueprintEncode(benchmark::State& state) {
  const auto& encoder = *setup().artifacts.encoder;  // setup cost untimed
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(gpu()));
  }
}
BENCHMARK(BM_BlueprintEncode);

// ---- §3.3 headline: O(1) threshold voting vs O(n*k*I) clustering ----

void BM_GlimpseValiditySampling(benchmark::State& state) {
  // Per-candidate cost of Hardware-Aware Sampling at batch size n: n O(1)
  // accept tests against precomputed thresholds.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto configs = random_configs(n);
  auto thresholds =
      setup().artifacts.validity->thresholds_for(setup().artifacts.encoder->encode(gpu()));
  for (auto _ : state) {
    int accepted = 0;
    for (const auto& c : configs)
      accepted += setup().artifacts.validity->accept(conv_task(), c, thresholds);
    benchmark::DoNotOptimize(accepted);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_GlimpseValiditySampling)->Arg(32)->Arg(96)->Arg(288);

void BM_ChameleonClusteringSampling(benchmark::State& state) {
  // Chameleon's adaptive sampling: k-means over the candidate pool's
  // feature rows (k = 8 measurement slots).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto configs = random_configs(n);
  std::vector<linalg::Vector> rows;
  rows.reserve(n);
  for (const auto& c : configs)
    rows.push_back(searchspace::config_features(conv_task(), c));
  linalg::Matrix x = linalg::Matrix::from_rows(rows);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::kmeans(x, 8, rng));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_ChameleonClusteringSampling)->Arg(32)->Arg(96)->Arg(288);

// ---- cost models ----

void BM_GbtCostModelPredict(benchmark::State& state) {
  Rng rng(4);
  auto configs = random_configs(256);
  std::vector<linalg::Vector> rows;
  linalg::Vector y;
  for (const auto& c : configs) {
    rows.push_back(searchspace::config_features(conv_task(), c));
    auto e = gpusim::estimate(conv_task(), c, gpu());
    y.push_back(e.valid ? e.gflops : 0.0);
  }
  ml::GbtRegressor gbt;
  gbt.fit(linalg::Matrix::from_rows(rows), y, rng);
  std::size_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(gbt.predict(rows[i++ % 256]));
}
BENCHMARK(BM_GbtCostModelPredict);

void BM_NeuralSurrogatePredict(benchmark::State& state) {
  Rng rng(5);
  auto configs = random_configs(128);
  std::vector<linalg::Vector> rows;
  linalg::Vector y;
  for (const auto& c : configs) {
    rows.push_back(searchspace::config_features(conv_task(), c));
    auto e = gpusim::estimate(conv_task(), c, gpu());
    y.push_back(e.valid ? e.gflops / 1000.0 : 0.0);
  }
  core::NeuralSurrogate surrogate(rows[0].size(), rng);
  surrogate.fit(linalg::Matrix::from_rows(rows), y, rng);
  std::size_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(surrogate.predict(rows[i++ % 128]));
}
BENCHMARK(BM_NeuralSurrogatePredict);

// ---- search machinery ----

void BM_SimulatedAnnealingRound(benchmark::State& state) {
  // One AutoTVM-style planning round: SA over a trivial score.
  Rng rng(6);
  tuning::ScoreFn score = [](const searchspace::Config& c) {
    return static_cast<double>(c[0] % 7);
  };
  tuning::SaOptions opts;
  opts.num_chains = 48;
  opts.num_steps = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tuning::simulated_annealing(conv_task().space(), score, 48, rng, opts));
  }
}
BENCHMARK(BM_SimulatedAnnealingRound);

void BM_PriorGenerate(benchmark::State& state) {
  // One-off prior generation per layer (paper: "negligible").
  auto bp = setup().artifacts.encoder->encode(gpu());
  const auto& prior = *setup().artifacts.prior;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prior.generate(conv_task(), bp));
  }
}
BENCHMARK(BM_PriorGenerate);

void BM_PriorTopConfigs(benchmark::State& state) {
  auto bp = setup().artifacts.encoder->encode(gpu());
  auto prior = setup().artifacts.prior->generate(conv_task(), bp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prior.top_configs(32));
  }
}
BENCHMARK(BM_PriorTopConfigs);

void BM_MetaOptimizerScore(benchmark::State& state) {
  auto bp = setup().artifacts.encoder->encode(gpu());
  auto configs = random_configs(64);
  std::vector<linalg::Vector> derived;
  for (const auto& c : configs)
    derived.push_back(core::MetaOptimizer::derived_block(conv_task(), c));
  core::MetaFeatures f{.surrogate_mean = 0.5, .surrogate_std = 0.1, .prior_z = 0.0,
                       .progress = 0.5};
  const auto& meta = *setup().artifacts.meta;
  std::size_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(meta.score(f, bp, derived[i++ % 64]));
}
BENCHMARK(BM_MetaOptimizerScore);

}  // namespace

BENCHMARK_MAIN();
