// Figure 8: design-space exploration of the Blueprint embedding — size of
// the embedding vs information loss from compression, with the chosen
// operating point (the paper's red star) marked.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "glimpse/blueprint.hpp"

using namespace glimpse;

int main() {
  std::printf("=== Figure 8: Blueprint design-space exploration ===\n");
  std::printf("(information loss = PCA reconstruction RMSE in standardized\n");
  std::printf(" units; variance loss = 1 - explained variance)\n\n");

  auto dse = core::BlueprintEncoder::design_space_exploration();
  std::size_t chosen = core::default_blueprint_dim();

  TextTable table({"dim", "size of Blueprint", "information loss (RMSE)",
                   "variance loss", "chosen"});
  for (const auto& p : dse) {
    table.add(std::to_string(p.dim), bench::fmt_pct(p.size_fraction),
              bench::fmt(p.information_loss, 4),
              bench::fmt_pct(1.0 - p.explained_variance, 2),
              p.dim == chosen ? "  *" : "");
  }
  table.print(std::cout);

  core::BlueprintEncoder enc(chosen);
  std::printf(
      "\nChosen operating point: dim %zu (%s of the raw datasheet vector),\n"
      "information loss %.4f RMSE / %.2f%% of the feature variance "
      "(paper: < 0.5%% information loss at the knee).\n",
      chosen, bench::fmt_pct(static_cast<double>(chosen) / dse.size()).c_str(),
      enc.information_loss(),
      enc.information_loss() * enc.information_loss() * 100.0);
  return bench::finish();
}
