// Result-cache bench: repeated-task tuning with the measurement cache on.
//
// A transfer-learning style sweep (paper Fig. 5) re-tunes the same task many
// times — across seeds, tuner variants, and ablation arms — and without a
// cache every repeat pays the full simulated measurement bill again. This
// bench runs R identical tuning sessions per arm, once without and once with
// a shared ResultCache, and reports the reduction in measurer invocations
// (expected: ~R×, since only the first repeat measures) plus a
// decisions-identity check: the cache must change the simulated clock only,
// never a tuning decision.
//
// Arms: Random and AutoTVM single sessions, and the multi-task scheduler
// running four identical jobs over a bounded slot pool (cross-job sharing
// already dedups within a run; the cache removes the across-run repeats).
//
// Results go to stdout and BENCH_cache.json (validated by
// tools/check_bench_json.py --kind cache).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/autotvm.hpp"
#include "baselines/random_tuner.hpp"
#include "common/json_writer.hpp"
#include "hwspec/database.hpp"
#include "searchspace/models.hpp"
#include "tuning/result_cache.hpp"
#include "tuning/scheduler.hpp"
#include "tuning/session.hpp"

namespace {

using namespace glimpse;

constexpr std::size_t kRepeats = 6;
constexpr std::size_t kMaxTrials = 64;
constexpr std::size_t kBatch = 8;
constexpr std::uint64_t kSeed = 95;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Workload {
  searchspace::Task task;
  const hwspec::GpuSpec* gpu;
};

Workload make_workload() {
  searchspace::ConvShape conv;
  conv.c = 256;
  conv.h = 14;
  conv.w = 14;
  conv.k = 256;
  conv.kh = 3;
  conv.kw = 3;
  conv.stride = 1;
  conv.pad = 1;
  const hwspec::GpuSpec* gpu = hwspec::find_gpu("Titan Xp");
  if (!gpu) gpu = hwspec::evaluation_gpus().front();
  return {searchspace::Task("cache.conv", searchspace::TemplateKind::kConv2d, conv),
          gpu};
}

tuning::SessionOptions session_options() {
  tuning::SessionOptions o;
  o.max_trials = kMaxTrials;
  o.batch_size = kBatch;
  return o;
}

struct Sweep {
  std::string name;
  std::string tuner;
  std::size_t repeats = 0;
  std::size_t trials_total = 0;
  std::size_t measurements_no_cache = 0;
  std::size_t measurements_cache = 0;
  double reduction = 0.0;
  std::uint64_t cache_hits = 0;
  bool traces_identical = true;
  double wall_ms = 0.0;
};

using TunerFactory = std::function<std::unique_ptr<tuning::Tuner>()>;

/// R identical sessions; `cache` nullptr for the baseline arm. Returns the
/// traces and accumulates measurer invocations into `measurements`.
std::vector<tuning::Trace> run_repeats(const Workload& w, const TunerFactory& make,
                                       tuning::ResultCache* cache,
                                       std::size_t& measurements) {
  std::vector<tuning::Trace> traces;
  for (std::size_t r = 0; r < kRepeats; ++r) {
    auto tuner = make();
    gpusim::SimMeasurer sim;
    tuning::SessionOptions opts = session_options();
    opts.result_cache = cache;
    traces.push_back(tuning::run_session(*tuner, w.task, *w.gpu, sim, opts));
    measurements += sim.num_measurements();
  }
  return traces;
}

Sweep run_session_sweep(const Workload& w, const std::string& name,
                        const std::string& tuner_name, const TunerFactory& make) {
  Sweep s;
  s.name = name;
  s.tuner = tuner_name;
  s.repeats = kRepeats;
  double t0 = now_ms();

  std::vector<tuning::Trace> plain = run_repeats(w, make, nullptr,
                                                 s.measurements_no_cache);
  tuning::ResultCache cache;
  std::vector<tuning::Trace> cached = run_repeats(w, make, &cache,
                                                  s.measurements_cache);

  s.wall_ms = now_ms() - t0;
  s.cache_hits = cache.stats().hits;
  for (std::size_t r = 0; r < kRepeats; ++r) {
    s.trials_total += cached[r].trials.size();
    s.traces_identical = s.traces_identical &&
                         tuning::trace_decisions_identical(plain[r], cached[r]);
  }
  s.reduction = s.measurements_cache
                    ? static_cast<double>(s.measurements_no_cache) /
                          static_cast<double>(s.measurements_cache)
                    : 0.0;
  return s;
}

/// Four identical jobs per scheduler run (cross-job dedup makes three of
/// them pure followers), repeated R times against one shared cache.
Sweep run_scheduler_sweep(const Workload& w) {
  constexpr std::size_t kJobs = 4;
  const std::size_t slots = tuning::scheduler_slots_from_env(4);
  Sweep s;
  s.name = "scheduler_4x_random";
  s.tuner = "Random";
  s.repeats = kRepeats;
  double t0 = now_ms();

  auto run_once = [&](tuning::ResultCache* cache, std::size_t& measurements) {
    std::vector<std::unique_ptr<baselines::RandomTuner>> tuners;
    std::vector<std::unique_ptr<gpusim::SimMeasurer>> sims;
    std::vector<tuning::ScheduledJob> jobs;
    for (std::size_t j = 0; j < kJobs; ++j) {
      tuners.push_back(std::make_unique<baselines::RandomTuner>(w.task, *w.gpu, kSeed));
      sims.push_back(std::make_unique<gpusim::SimMeasurer>());
      tuning::ScheduledJob job;
      job.tuner = tuners.back().get();
      job.task = &w.task;
      job.hw = w.gpu;
      job.measurer = sims.back().get();
      job.options = session_options();
      job.options.result_cache = cache;
      jobs.push_back(job);
    }
    tuning::SchedulerOptions so;
    so.slots = slots;
    std::vector<tuning::Trace> traces = tuning::run_scheduled(jobs, so);
    for (const auto& sim : sims) measurements += sim->num_measurements();
    return traces;
  };

  std::vector<std::vector<tuning::Trace>> plain, cached;
  for (std::size_t r = 0; r < kRepeats; ++r)
    plain.push_back(run_once(nullptr, s.measurements_no_cache));
  tuning::ResultCache cache;
  for (std::size_t r = 0; r < kRepeats; ++r)
    cached.push_back(run_once(&cache, s.measurements_cache));

  s.wall_ms = now_ms() - t0;
  s.cache_hits = cache.stats().hits;
  for (std::size_t r = 0; r < kRepeats; ++r)
    for (std::size_t j = 0; j < kJobs; ++j) {
      s.trials_total += cached[r][j].trials.size();
      s.traces_identical =
          s.traces_identical &&
          tuning::trace_decisions_identical(plain[r][j], cached[r][j]);
    }
  s.reduction = s.measurements_cache
                    ? static_cast<double>(s.measurements_no_cache) /
                          static_cast<double>(s.measurements_cache)
                    : 0.0;
  return s;
}

void print_sweep(const Sweep& s) {
  std::printf(
      "%-22s %-8s repeats %zu  trials %4zu  meas %5zu -> %4zu  reduction %5.1fx"
      "  hits %5llu  identical %s  wall %7.1f ms\n",
      s.name.c_str(), s.tuner.c_str(), s.repeats, s.trials_total,
      s.measurements_no_cache, s.measurements_cache, s.reduction,
      static_cast<unsigned long long>(s.cache_hits),
      s.traces_identical ? "yes" : "NO", s.wall_ms);
}

}  // namespace

int main() {
  std::printf("=== micro_cache: repeated-task tuning with the result cache ===\n\n");
  Workload w = make_workload();
  std::vector<Sweep> sweeps;

  sweeps.push_back(run_session_sweep(w, "repeat_random", "Random", [&] {
    return std::make_unique<baselines::RandomTuner>(w.task, *w.gpu, kSeed);
  }));
  print_sweep(sweeps.back());

  sweeps.push_back(run_session_sweep(w, "repeat_autotvm", "AutoTVM", [&] {
    return std::make_unique<baselines::AutoTvmTuner>(w.task, *w.gpu, kSeed);
  }));
  print_sweep(sweeps.back());

  sweeps.push_back(run_scheduler_sweep(w));
  print_sweep(sweeps.back());

  bool ok = true;
  for (const Sweep& s : sweeps)
    ok = ok && s.traces_identical && s.reduction >= 5.0;
  std::printf("\nacceptance (reduction >= 5x, decisions identical): %s\n",
              ok ? "PASS" : "FAIL");

  const char* out_path = "BENCH_cache.json";
  if (std::ofstream f{out_path}) {
    JsonWriter jw(f);
    jw.begin_object();
    jw.kv("max_trials", static_cast<std::uint64_t>(kMaxTrials));
    jw.kv("batch_size", static_cast<std::uint64_t>(kBatch));
    jw.kv("repeats", static_cast<std::uint64_t>(kRepeats));
    jw.key("sweeps");
    jw.begin_array();
    for (const Sweep& s : sweeps) {
      jw.begin_object();
      jw.kv("name", s.name);
      jw.kv("tuner", s.tuner);
      jw.kv("repeats", static_cast<std::uint64_t>(s.repeats));
      jw.kv("trials_total", static_cast<std::uint64_t>(s.trials_total));
      jw.kv("measurements_no_cache",
            static_cast<std::uint64_t>(s.measurements_no_cache));
      jw.kv("measurements_cache", static_cast<std::uint64_t>(s.measurements_cache));
      jw.kv_fixed("reduction", s.reduction, 2);
      jw.kv("cache_hits", s.cache_hits);
      jw.kv("traces_identical", s.traces_identical);
      jw.kv_fixed("wall_ms", s.wall_ms, 3);
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();
    jw.done();
    std::printf("wrote %s\n", out_path);
  }
  return ok ? 0 : 1;
}
