// Figure 5: output-code performance relative to AutoTVM when every layer
// gets a fixed 100-second optimization-time budget, comparing AutoTVM
// without transfer learning, AutoTVM with transfer learning, and Glimpse.
// (Paper: Glimpse geomean 1.40x over AutoTVM, up to 2.18x; transfer
// learning sometimes *hurts*.)
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace glimpse;

int main() {
  std::printf("=== Figure 5: fixed 100s/layer budget vs AutoTVM transfer learning ===\n\n");

  bench::Setup setup = bench::make_setup();
  bench::Pretrained pre = bench::pretrain(setup);

  std::vector<bench::Method> methods = {bench::autotvm_method(pre),
                                        bench::autotvm_method(pre, true),
                                        bench::glimpse_method(pre)};

  tuning::SessionOptions opts;
  opts.max_trials = 400;
  opts.batch_size = 8;
  opts.time_budget_s = 100.0;  // simulated seconds, the paper's budget

  TextTable table({"GPU", "model", "AutoTVM w/o TL", "AutoTVM w/ TL",
                   "Glimpse (ours)"});
  std::vector<double> tl_ratios, glimpse_ratios;

  // Fan the whole sweep grid across the thread pool (cell order mirrors the
  // aggregation loops below).
  std::vector<bench::Cell> cells;
  for (const auto* gpu : setup.eval_gpus)
    for (const auto& model : setup.models)
      for (const auto& m : methods)
        for (const auto* task : setup.representative_tasks(model))
          cells.push_back({&m, task, gpu});
  std::vector<tuning::Trace> traces = bench::run_cells(cells, opts);

  std::size_t cell = 0;
  for (const auto* gpu : setup.eval_gpus) {
    for (const auto& model : setup.models) {
      // Per-method geomean of best GFLOPS over the model's representative
      // tasks within the budget.
      std::vector<double> per_method;
      for (const auto& m : methods) {
        (void)m;
        std::vector<double> gf;
        for (const auto* task : setup.representative_tasks(model)) {
          (void)task;
          gf.push_back(std::max(1e-3, traces[cell++].best_gflops()));
        }
        per_method.push_back(geomean(gf));
      }
      double base = per_method[0];
      table.add(gpu->name, model.model().name, "1.00",
                bench::fmt(per_method[1] / base), bench::fmt(per_method[2] / base));
      tl_ratios.push_back(per_method[1] / base);
      glimpse_ratios.push_back(per_method[2] / base);
    }
  }
  table.add("geomean", "", "1.00", bench::fmt(geomean(tl_ratios)),
            bench::fmt(geomean(glimpse_ratios)));
  table.print(std::cout);

  std::printf("\nPaper: Glimpse geomean 1.40x (up to 2.18x); transfer learning\n"
              "geomean ~1.00x and occasionally below the no-TL baseline.\n");
  return bench::finish();
}
