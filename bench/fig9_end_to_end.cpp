// Figure 9: end-to-end evaluation. Every task of each model is tuned to
// convergence by AutoTVM, Chameleon, DGP and Glimpse; we report
//   (a) optimization-time improvement over AutoTVM (paper geomeans:
//       Chameleon 4.45x, DGP 3.50x, Glimpse 6.73x), and
//   (b) output-binary inference speed relative to AutoTVM (paper:
//       Glimpse best at ~1.058x geomean).
// Two evaluation GPUs (Pascal and Ampere extremes) keep the single-core
// runtime manageable; the protocol is identical across methods.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace glimpse;

namespace {

struct ModelRun {
  double search_s = 0.0;    ///< simulated GPU seconds over all tasks
  double latency_s = 0.0;   ///< end-to-end model inference latency
};

ModelRun tune_model(const bench::Method& method, const searchspace::TaskSet& model,
                    const hwspec::GpuSpec& gpu) {
  ModelRun run;
  std::vector<double> best_latency(model.num_tasks());
  for (std::size_t i = 0; i < model.num_tasks(); ++i) {
    double gpu_seconds = 0.0;
    auto trace = bench::run_one(method, model.task(i), gpu,
                                bench::e2e_session_options(), &gpu_seconds);
    best_latency[i] = trace.best_latency();
    run.search_s += gpu_seconds;
  }
  run.latency_s = model.end_to_end_latency(best_latency);
  return run;
}

}  // namespace

int main() {
  std::printf("=== Figure 9: end-to-end optimization time and inference speed ===\n\n");

  bench::Setup setup = bench::make_setup();
  bench::Pretrained pre = bench::pretrain(setup);

  std::vector<bench::Method> methods = {
      bench::autotvm_method(pre), bench::chameleon_method(pre),
      bench::dgp_method(pre), bench::glimpse_method(pre)};
  std::vector<const hwspec::GpuSpec*> gpus = {hwspec::find_gpu("Titan Xp"),
                                              hwspec::find_gpu("RTX 3090")};

  // results[model][method] averaged over GPUs.
  std::vector<std::vector<ModelRun>> results(setup.models.size(),
                                             std::vector<ModelRun>(methods.size()));
  for (std::size_t mi = 0; mi < setup.models.size(); ++mi) {
    for (std::size_t me = 0; me < methods.size(); ++me) {
      for (const auto* gpu : gpus) {
        ModelRun r = tune_model(methods[me], setup.models[mi], *gpu);
        results[mi][me].search_s += r.search_s / gpus.size();
        results[mi][me].latency_s += r.latency_s / gpus.size();
      }
      std::fprintf(stderr, "[fig9] %s / %s done\n",
                   setup.models[mi].model().name.c_str(), methods[me].name.c_str());
    }
  }

  std::printf("--- (a) Optimization-time improvement over AutoTVM ---\n");
  TextTable ta({"model", "AutoTVM", "Chameleon", "DGP", "Glimpse (ours)"});
  std::vector<std::vector<double>> speedups(methods.size());
  for (std::size_t mi = 0; mi < setup.models.size(); ++mi) {
    std::vector<std::string> row = {setup.models[mi].model().name};
    for (std::size_t me = 0; me < methods.size(); ++me) {
      double s = results[mi][0].search_s / results[mi][me].search_s;
      speedups[me].push_back(s);
      row.push_back(bench::fmt_ratio(s));
    }
    ta.add_row(row);
  }
  {
    std::vector<std::string> row = {"geomean"};
    for (std::size_t me = 0; me < methods.size(); ++me)
      row.push_back(bench::fmt_ratio(geomean(speedups[me])));
    ta.add_row(row);
  }
  ta.print(std::cout);
  std::printf("Paper geomeans: 1.00x / 4.45x / 3.50x / 6.73x\n\n");

  std::printf("--- (b) Inference speed relative to AutoTVM ---\n");
  TextTable tb({"model", "AutoTVM", "Chameleon", "DGP", "Glimpse (ours)"});
  std::vector<std::vector<double>> infs(methods.size());
  for (std::size_t mi = 0; mi < setup.models.size(); ++mi) {
    std::vector<std::string> row = {setup.models[mi].model().name};
    for (std::size_t me = 0; me < methods.size(); ++me) {
      double s = results[mi][0].latency_s / results[mi][me].latency_s;
      infs[me].push_back(s);
      row.push_back(bench::fmt(s, 3));
    }
    tb.add_row(row);
  }
  {
    std::vector<std::string> row = {"geomean"};
    for (std::size_t me = 0; me < methods.size(); ++me)
      row.push_back(bench::fmt(geomean(infs[me]), 3));
    tb.add_row(row);
  }
  tb.print(std::cout);
  std::printf("Paper geomeans: 1.000 / 1.047 / 1.058 / 1.058 (Glimpse ties DGP on\n"
              "latency while searching far faster).\n\n");

  std::printf("Raw per-model data (avg over %zu GPUs):\n", gpus.size());
  TextTable raw({"model", "method", "search (sim s)", "inference (ms)"});
  for (std::size_t mi = 0; mi < setup.models.size(); ++mi)
    for (std::size_t me = 0; me < methods.size(); ++me)
      raw.add(setup.models[mi].model().name, methods[me].name,
              bench::fmt(results[mi][me].search_s, 0),
              bench::fmt(results[mi][me].latency_s * 1e3, 3));
  raw.print(std::cout);
  return bench::finish();
}
