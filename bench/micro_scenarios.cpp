// Scenario-diversity bench: the new template kinds swept across Blueprints.
//
// One representative task per new kind — transformer self-attention
// (BERT-base geometry), a MobileNet depthwise 3x3, and the global-pool row
// reduction — is tuned with AutoTVM on five Blueprints spanning the edge
// part (Jetson Nano), two consumer generations (Titan Xp, RTX 2080 Ti) and
// the datacenter parts (A100 PCIe, H100 PCIe). This is the paper's fig5/
// fig9 story on the new kinds: the best configuration must move as the
// Blueprint changes, or hardware embedding would have nothing to learn.
//
// The attention template carries the Bolt-style use_tensor_core option,
// which the resource model gates on the Blueprint's tensor-core fields. The
// sweep records whether each device's tuned optimum selects it. Acceptance
// (enforced here and by tools/check_bench_json.py --check-scenarios):
//   - per kind, the winning config differs on >= 3 of the 5 Blueprints;
//   - the tensor-core option wins on >= 1 tensor-core Blueprint and is
//     never selected on silicon without tensor cores;
//   - tuning decisions are bit-identical at 1 and 4 measurement threads.
//
// Results go to stdout and BENCH_scenarios.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "baselines/autotvm.hpp"
#include "common/json_writer.hpp"
#include "common/parallel.hpp"
#include "gpusim/measurer.hpp"
#include "hwspec/database.hpp"
#include "searchspace/models.hpp"
#include "tuning/session.hpp"

namespace {

using namespace glimpse;

constexpr std::size_t kMaxTrials = 224;
constexpr std::size_t kBatch = 8;
constexpr std::uint64_t kSeed = 4117;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* const kGpuNames[] = {"Jetson Nano", "Titan Xp", "RTX 2080 Ti",
                                 "A100 PCIe", "H100 PCIe"};

struct Cell {
  const hwspec::GpuSpec* gpu = nullptr;
  double best_gflops = 0.0;
  std::string best_config;
  bool has_best = false;
  bool tc_selected = false;
  double valid_frac = 0.0;
  bool decisions_identical = false;
  double wall_ms = 0.0;
};

struct KindSweep {
  searchspace::Task task;
  std::vector<Cell> cells;
  std::size_t distinct_best_configs = 0;
};

tuning::Trace tune(const searchspace::Task& task, const hwspec::GpuSpec& hw) {
  baselines::AutoTvmTuner tuner(task, hw, kSeed);
  gpusim::SimMeasurer sim;
  tuning::SessionOptions opts;
  opts.max_trials = kMaxTrials;
  opts.batch_size = kBatch;
  return tuning::run_session(tuner, task, hw, sim, opts);
}

Cell run_cell(const searchspace::Task& task, const hwspec::GpuSpec& hw) {
  Cell c;
  c.gpu = &hw;
  const double t0 = now_ms();

  // The sweep runs single-threaded, then repeats at 4 measurement threads:
  // the tuner's decision stream (configs proposed, order, results) must not
  // depend on measurement parallelism.
  set_num_threads(1);
  tuning::Trace tr = tune(task, hw);
  set_num_threads(4);
  tuning::Trace tr4 = tune(task, hw);
  set_num_threads(0);  // restore the environment default
  c.decisions_identical = tuning::trace_decisions_identical(tr, tr4);

  std::size_t valid = 0;
  const tuning::TrialRecord* best = nullptr;
  for (const auto& t : tr.trials) {
    if (!t.result.valid) continue;
    ++valid;
    if (best == nullptr || t.result.gflops > best->result.gflops) best = &t;
  }
  c.valid_frac = tr.trials.empty()
                     ? 0.0
                     : static_cast<double>(valid) / static_cast<double>(tr.trials.size());
  if (best != nullptr) {
    c.has_best = true;
    c.best_gflops = best->result.gflops;
    c.best_config = task.space().to_string(best->config);
    if (task.space().has_knob(searchspace::kTensorCoreKnob))
      c.tc_selected =
          task.space().option_of(best->config, searchspace::kTensorCoreKnob)[0] == 1;
  }
  c.wall_ms = now_ms() - t0;
  return c;
}

KindSweep run_sweep(searchspace::Task task) {
  KindSweep s{std::move(task), {}, 0};
  std::set<std::string> distinct;
  for (const char* name : kGpuNames) {
    const auto& hw = hwspec::find_gpu_or_throw(name);
    Cell c = run_cell(s.task, hw);
    std::printf("  %-12s %-12s best %9.1f GFLOPS  valid %5.1f%%  tc %-3s"
                "  identical %-3s  %7.0f ms\n",
                to_string(s.task.kind()), hw.name.c_str(), c.best_gflops,
                100.0 * c.valid_frac, c.tc_selected ? "yes" : "no",
                c.decisions_identical ? "yes" : "NO", c.wall_ms);
    if (c.has_best) distinct.insert(c.best_config);
    s.cells.push_back(std::move(c));
  }
  s.distinct_best_configs = distinct.size();
  return s;
}

}  // namespace

int main() {
  std::printf("=== micro_scenarios: new template kinds across Blueprints ===\n\n");

  std::vector<KindSweep> sweeps;
  sweeps.push_back(run_sweep(
      searchspace::Task("scenario.attention", searchspace::AttentionShape{1, 12, 128, 64})));
  sweeps.push_back(run_sweep(searchspace::Task(
      "scenario.depthwise", searchspace::DepthwiseShape{1, 128, 56, 56, 3, 3, 1, 1})));
  sweeps.push_back(run_sweep(
      searchspace::Task("scenario.reduce", searchspace::ReductionShape{256, 196})));

  bool optima_move = true, decisions_ok = true, tc_never_on_plain = true;
  bool tc_selected_somewhere = false;
  for (const KindSweep& s : sweeps) {
    optima_move = optima_move && s.distinct_best_configs >= 3;
    for (const Cell& c : s.cells) {
      decisions_ok = decisions_ok && c.decisions_identical;
      if (c.tc_selected && c.gpu->tensor_cores > 0) tc_selected_somewhere = true;
      if (c.tc_selected && c.gpu->tensor_cores == 0) tc_never_on_plain = false;
    }
    std::printf("%s: %zu distinct optima across %zu Blueprints\n",
                to_string(s.task.kind()), s.distinct_best_configs, s.cells.size());
  }

  const bool ok =
      optima_move && decisions_ok && tc_selected_somewhere && tc_never_on_plain;
  std::printf(
      "\nacceptance (>= 3 distinct optima per kind, tensor cores selected on"
      " TC silicon and never off it, decisions identical across thread"
      " counts): %s\n",
      ok ? "PASS" : "FAIL");

  const char* out_path = "BENCH_scenarios.json";
  if (std::ofstream f{out_path}) {
    JsonWriter jw(f);
    jw.begin_object();
    jw.kv("max_trials", static_cast<std::uint64_t>(kMaxTrials));
    jw.kv("batch_size", static_cast<std::uint64_t>(kBatch));
    jw.key("scenario_sweeps");
    jw.begin_array();
    for (const KindSweep& s : sweeps) {
      jw.begin_object();
      jw.kv("kind", to_string(s.task.kind()));
      jw.kv("task", s.task.name());
      jw.kv("distinct_best_configs", static_cast<std::uint64_t>(s.distinct_best_configs));
      jw.key("cells");
      jw.begin_array();
      for (const Cell& c : s.cells) {
        jw.begin_object();
        jw.kv("gpu", c.gpu->name);
        jw.kv("tensor_cores", static_cast<std::uint64_t>(c.gpu->tensor_cores));
        jw.kv_fixed("best_gflops", c.best_gflops, 2);
        jw.kv("best_config", c.best_config);
        jw.kv("tc_selected", c.tc_selected);
        jw.kv_fixed("valid_frac", c.valid_frac, 4);
        jw.kv("decisions_identical", c.decisions_identical);
        jw.kv_fixed("wall_ms", c.wall_ms, 3);
        jw.end_object();
      }
      jw.end_array();
      jw.end_object();
    }
    jw.end_array();
    jw.key("acceptance");
    jw.begin_object();
    jw.kv("optima_move", optima_move);
    jw.kv("tc_selected_somewhere", tc_selected_somewhere);
    jw.kv("tc_never_on_plain", tc_never_on_plain);
    jw.kv("decisions_identical", decisions_ok);
    jw.kv("pass", ok);
    jw.end_object();
    jw.end_object();
    jw.done();
    std::printf("wrote %s\n", out_path);
  }
  return ok ? 0 : 1;
}
