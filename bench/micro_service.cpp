// Tuning-service bench: the glimpsed daemon stack exercised end to end.
//
// Three scenarios, each against a fresh in-process SessionManager behind a
// real Unix-socket Server (so every job crosses the wire protocol both
// ways, like production clients):
//
//   * single_stream      -- one client streams distinct jobs and waits for
//                           each result; baseline daemon throughput.
//   * fleet_shared_cache -- several clients concurrently submit overlapping
//                           specs against a shared result cache; duplicate
//                           work must be deduplicated (cache hits and/or
//                           in-round sharing) and every duplicate must
//                           settle with identical best results.
//   * saturation_burst   -- a long-running job pins the worker, then a
//                           burst overruns the bounded queue; admission
//                           control must reject the overflow with a
//                           retry-after hint, never block or drop silently.
//
// Plus a tracing-overhead probe: the same ping round-trip timed with
// distributed tracing off and on, so the per-request cost of the span +
// traceparent layer shows up as a number instead of a guess.
//
// Results go to stdout and BENCH_service.json (validated by
// tools/check_bench_json.py --kind service).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.hpp"
#include "common/telemetry/span.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/session_manager.hpp"
#include "tuning/scheduler.hpp"

namespace {

using namespace glimpse;
using service::Client;
using service::JobSpec;
using service::Response;
using service::ResponseType;

constexpr std::uint64_t kMaxTrials = 48;
constexpr std::uint64_t kBatch = 8;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

JobSpec job_spec(std::uint64_t seed, std::uint64_t max_trials = kMaxTrials) {
  JobSpec spec;
  spec.tuner = "random";
  spec.model = "resnet18";
  spec.task_index = 1;
  spec.gpu = "Titan Xp";
  spec.seed = seed;
  spec.max_trials = max_trials;
  spec.batch_size = kBatch;
  return spec;
}

struct Scenario {
  std::string name;
  std::size_t clients = 0;
  std::size_t submitted = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  std::size_t trials_total = 0;
  std::uint64_t cache_hits = 0;
  bool results_identical = true;
  double wall_ms = 0.0;
};

/// One daemon per scenario: manager + server on a fresh Unix socket.
struct Daemon {
  explicit Daemon(service::SessionManagerOptions mopts, int index)
      : sock("/tmp/glimpse_micro_service_" + std::to_string(::getpid()) + "_" +
             std::to_string(index) + ".sock"),
        manager(std::move(mopts)),
        server(manager, service::ServerOptions{sock, -1}) {
    server.start();
  }
  ~Daemon() { server.stop(); }

  std::string sock;
  service::SessionManager manager;
  service::Server server;
};

void fill_totals(Scenario& s, Daemon& d) {
  Client c = Client::connect_unix(d.sock);
  Response stats = c.stats();
  s.completed = stats.stats.completed;
  s.cancelled = stats.stats.cancelled;
  s.cache_hits = stats.stats.cache_hits;
}

Scenario run_single_stream(int index) {
  Scenario s;
  s.name = "single_stream";
  s.clients = 1;
  service::SessionManagerOptions mopts;
  mopts.slots = tuning::scheduler_slots_from_env(4);
  Daemon d(mopts, index);
  double t0 = now_ms();

  Client client = Client::connect_unix(d.sock);
  constexpr std::size_t kJobs = 8;
  for (std::size_t j = 0; j < kJobs; ++j) {
    ++s.submitted;
    Response accepted = client.submit("stream", 0, job_spec(1000 + j));
    if (accepted.type != ResponseType::kAccepted) {
      ++s.rejected;
      continue;
    }
    ++s.accepted;
    Response done = client.result(accepted.job_id, /*wait=*/true);
    s.results_identical = s.results_identical &&
                          done.type == ResponseType::kResult &&
                          done.summary.state == "done";
    s.trials_total += done.summary.trials;
  }

  s.wall_ms = now_ms() - t0;
  fill_totals(s, d);
  return s;
}

Scenario run_fleet_shared_cache(int index) {
  Scenario s;
  s.name = "fleet_shared_cache";
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kJobsPerClient = 4;
  constexpr std::size_t kDistinctSeeds = 2;  // heavy overlap across clients
  s.clients = kClients;
  service::SessionManagerOptions mopts;
  mopts.slots = tuning::scheduler_slots_from_env(4);
  mopts.cache = "mem";
  Daemon d(mopts, index);
  double t0 = now_ms();

  // Warm the cache with one run per distinct spec first: the fleet's
  // duplicates then hit the cache regardless of round interleaving (fully
  // concurrent duplicates would otherwise be absorbed by the scheduler's
  // in-round sharing, which is invisible to the cache counters).
  std::size_t warm_accepted = 0;
  {
    Client warmer = Client::connect_unix(d.sock);
    for (std::size_t seed = 0; seed < kDistinctSeeds; ++seed) {
      Response r = warmer.submit("warmup", 0, job_spec(2000 + seed));
      if (r.type != ResponseType::kAccepted) continue;
      ++warm_accepted;
      warmer.result(r.job_id, true);
    }
  }

  std::mutex mu;
  std::vector<service::JobSummary> done;
  std::size_t accepted = 0, rejected = 0;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client = Client::connect_unix(d.sock);
      std::vector<std::uint64_t> ids;
      for (std::size_t j = 0; j < kJobsPerClient; ++j) {
        Response r = client.submit("fleet" + std::to_string(c), 0,
                                   job_spec(2000 + j % kDistinctSeeds));
        std::lock_guard<std::mutex> lock(mu);
        if (r.type == ResponseType::kAccepted) {
          ++accepted;
          ids.push_back(r.job_id);
        } else {
          ++rejected;
        }
      }
      for (std::uint64_t id : ids) {
        Response r = client.result(id, /*wait=*/true);
        std::lock_guard<std::mutex> lock(mu);
        if (r.type == ResponseType::kResult) done.push_back(r.summary);
      }
    });
  }
  for (auto& t : threads) t.join();

  s.submitted = kDistinctSeeds + kClients * kJobsPerClient;
  s.accepted = warm_accepted + accepted;
  s.rejected = kDistinctSeeds - warm_accepted + rejected;
  // Every duplicate of a spec must settle with the identical best result no
  // matter which client ran first or how rounds interleaved: with only
  // kDistinctSeeds distinct specs there can be at most that many distinct
  // best-GFLOPS values (bit-compared) across all settled jobs.
  std::vector<double> distinct;
  for (const auto& summary : done) {
    s.results_identical = s.results_identical && summary.state == "done";
    s.trials_total += summary.trials;
    bool seen = false;
    for (double v : distinct) seen = seen || v == summary.best_gflops;
    if (!seen) distinct.push_back(summary.best_gflops);
  }
  s.results_identical = s.results_identical && done.size() == accepted &&
                        distinct.size() <= kDistinctSeeds;

  s.wall_ms = now_ms() - t0;
  fill_totals(s, d);
  return s;
}

Scenario run_saturation_burst(int index) {
  Scenario s;
  s.name = "saturation_burst";
  s.clients = 1;
  service::SessionManagerOptions mopts;
  mopts.slots = 1;
  mopts.queue.max_depth = 4;
  Daemon d(mopts, index);
  double t0 = now_ms();

  Client client = Client::connect_unix(d.sock);
  // Pin the worker inside one long scheduler round.
  JobSpec hog = job_spec(1, /*max_trials=*/4096);
  hog.batch_size = 2048;
  ++s.submitted;
  Response hog_resp = client.submit("hog", 0, hog);
  bool hog_running = hog_resp.type == ResponseType::kAccepted;
  if (hog_running) ++s.accepted;
  while (hog_running) {
    Response st = client.stats();
    if (st.stats.running >= 1 && st.stats.queue_depth == 0) break;
    std::this_thread::yield();
  }

  for (std::size_t j = 0; j < 8; ++j) {
    ++s.submitted;
    Response r = client.submit("burst", 0, job_spec(3000 + j, /*max_trials=*/8));
    if (r.type == ResponseType::kAccepted)
      ++s.accepted;
    else
      ++s.rejected;
  }
  if (hog_running) client.cancel(hog_resp.job_id);
  client.drain();

  s.wall_ms = now_ms() - t0;
  fill_totals(s, d);
  return s;
}

struct TracingOverhead {
  std::size_t requests = 0;
  double off_us_per_req = 0.0;
  double on_us_per_req = 0.0;
  std::uint64_t traced_spans = 0;
};

/// Same client, same daemon, same request: ping round-trips timed with
/// tracing off and then on. Both halves run in this process, so the "on"
/// number carries the full cost of the layer (client request span, wire
/// traceparent, server request span, buffer appends).
TracingOverhead run_tracing_overhead(int index) {
  TracingOverhead t;
  constexpr std::size_t kRequests = 2000;
  t.requests = kRequests;
  Daemon d(service::SessionManagerOptions{}, index);
  Client client = Client::connect_unix(d.sock);

  auto us_per_ping = [&](std::size_t n) {
    double t0 = now_ms();
    for (std::size_t i = 0; i < n; ++i) client.ping();
    return (now_ms() - t0) * 1000.0 / static_cast<double>(n);
  };

  us_per_ping(200);  // warm the connection and the daemon's dispatch path
  telemetry::set_tracing_enabled(false);
  t.off_us_per_req = us_per_ping(kRequests);
  telemetry::set_tracing_enabled(true);
  telemetry::clear_events();
  t.on_us_per_req = us_per_ping(kRequests);
  telemetry::set_tracing_enabled(false);
  t.traced_spans = telemetry::drain_events().size();
  return t;
}

void print_scenario(const Scenario& s) {
  std::printf(
      "%-20s clients %zu  submitted %2zu  accepted %2zu  rejected %2zu"
      "  completed %2zu  cancelled %zu  trials %4zu  hits %4llu"
      "  identical %s  wall %8.1f ms\n",
      s.name.c_str(), s.clients, s.submitted, s.accepted, s.rejected,
      s.completed, s.cancelled, s.trials_total,
      static_cast<unsigned long long>(s.cache_hits),
      s.results_identical ? "yes" : "NO", s.wall_ms);
}

}  // namespace

int main() {
  std::printf("=== micro_service: glimpsed daemon end to end ===\n\n");
  std::vector<Scenario> scenarios;
  scenarios.push_back(run_single_stream(0));
  print_scenario(scenarios.back());
  scenarios.push_back(run_fleet_shared_cache(1));
  print_scenario(scenarios.back());
  scenarios.push_back(run_saturation_burst(2));
  print_scenario(scenarios.back());

  TracingOverhead overhead = run_tracing_overhead(3);
  std::printf(
      "%-20s %zu pings  tracing off %7.2f us/req  on %7.2f us/req"
      "  (+%.2f us)  %llu spans\n",
      "tracing_overhead", overhead.requests, overhead.off_us_per_req,
      overhead.on_us_per_req,
      overhead.on_us_per_req - overhead.off_us_per_req,
      static_cast<unsigned long long>(overhead.traced_spans));

  bool ok = true;
  for (const Scenario& s : scenarios) {
    ok = ok && s.results_identical && s.accepted + s.rejected == s.submitted &&
         s.completed + s.cancelled == s.accepted;
  }
  // The burst must actually overrun the queue, and the fleet must actually
  // share work across clients.
  ok = ok && scenarios[2].rejected > 0 && scenarios[1].cache_hits > 0;
  std::printf("\nacceptance (admission exact, results identical, dedup "
              "visible): %s\n",
              ok ? "PASS" : "FAIL");

  const char* out_path = "BENCH_service.json";
  if (std::ofstream f{out_path}) {
    JsonWriter jw(f);
    jw.begin_object();
    jw.kv("slots", static_cast<std::uint64_t>(tuning::scheduler_slots_from_env(4)));
    jw.kv("max_trials", kMaxTrials);
    jw.kv("batch_size", kBatch);
    jw.key("scenarios");
    jw.begin_array();
    for (const Scenario& s : scenarios) {
      jw.begin_object();
      jw.kv("name", s.name);
      jw.kv("clients", static_cast<std::uint64_t>(s.clients));
      jw.kv("submitted", static_cast<std::uint64_t>(s.submitted));
      jw.kv("accepted", static_cast<std::uint64_t>(s.accepted));
      jw.kv("rejected", static_cast<std::uint64_t>(s.rejected));
      jw.kv("completed", static_cast<std::uint64_t>(s.completed));
      jw.kv("cancelled", static_cast<std::uint64_t>(s.cancelled));
      jw.kv("trials_total", static_cast<std::uint64_t>(s.trials_total));
      jw.kv("cache_hits", s.cache_hits);
      jw.kv("results_identical", s.results_identical);
      jw.kv_fixed("wall_ms", s.wall_ms, 3);
      jw.end_object();
    }
    jw.end_array();
    jw.key("tracing_overhead");
    jw.begin_object();
    jw.kv("requests", static_cast<std::uint64_t>(overhead.requests));
    jw.kv_fixed("off_us_per_req", overhead.off_us_per_req, 3);
    jw.kv_fixed("on_us_per_req", overhead.on_us_per_req, 3);
    jw.kv_fixed("overhead_us_per_req",
                overhead.on_us_per_req - overhead.off_us_per_req, 3);
    jw.kv("traced_spans", overhead.traced_spans);
    jw.end_object();
    jw.end_object();
    jw.done();
    std::printf("wrote %s\n", out_path);
  }
  return ok ? 0 : 1;
}
