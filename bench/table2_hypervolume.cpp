// Table 2: Hyper-Volume (HV) summary of the multi-objective trade-off
// between search time and inference latency:
//   HV = SearchReduction x InferenceReduction x 100        (paper Eq. 2)
// with reductions measured against AutoTVM. Evaluated on the two Turing
// GPUs (complementing fig9's Pascal/Ampere pair).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"

using namespace glimpse;

namespace {

struct ModelRun {
  double search_s = 0.0;
  double latency_s = 0.0;
};

ModelRun tune_model(const bench::Method& method, const searchspace::TaskSet& model,
                    const hwspec::GpuSpec& gpu) {
  ModelRun run;
  std::vector<double> best_latency(model.num_tasks());
  for (std::size_t i = 0; i < model.num_tasks(); ++i) {
    double gpu_seconds = 0.0;
    auto trace = bench::run_one(method, model.task(i), gpu,
                                bench::e2e_session_options(), &gpu_seconds);
    best_latency[i] = trace.best_latency();
    run.search_s += gpu_seconds;
  }
  run.latency_s = model.end_to_end_latency(best_latency);
  return run;
}

}  // namespace

int main() {
  std::printf("=== Table 2: Hyper-Volume (search time x inference latency) ===\n\n");

  bench::Setup setup = bench::make_setup();
  bench::Pretrained pre = bench::pretrain(setup);

  std::vector<bench::Method> methods = {
      bench::autotvm_method(pre), bench::chameleon_method(pre),
      bench::dgp_method(pre), bench::glimpse_method(pre)};
  std::vector<const hwspec::GpuSpec*> gpus = {hwspec::find_gpu("RTX 2070 Super"),
                                              hwspec::find_gpu("RTX 2080 Ti")};

  TextTable table({"model", "AutoTVM search (sim h)", "AutoTVM infer (ms)",
                   "method", "search redu.", "infer redu.", "HV"});

  for (auto& model : setup.models) {
    std::vector<ModelRun> runs(methods.size());
    for (std::size_t me = 0; me < methods.size(); ++me) {
      for (const auto* gpu : gpus) {
        ModelRun r = tune_model(methods[me], model, *gpu);
        runs[me].search_s += r.search_s;  // summed over GPUs (paper's "sum")
        runs[me].latency_s += r.latency_s / gpus.size();
      }
      std::fprintf(stderr, "[table2] %s / %s done\n", model.model().name.c_str(),
                   methods[me].name.c_str());
    }
    const ModelRun& base = runs[0];
    for (std::size_t me = 1; me < methods.size(); ++me) {
      double sr = tuning::search_reduction_pct(base.search_s, runs[me].search_s);
      double ir = tuning::inference_reduction_pct(base.latency_s, runs[me].latency_s);
      double hv = tuning::hyper_volume(base.search_s, base.latency_s,
                                       runs[me].search_s, runs[me].latency_s);
      table.add(model.model().name, bench::fmt(base.search_s / 3600.0, 3),
                bench::fmt(base.latency_s * 1e3, 3), methods[me].name,
                bench::fmt(sr, 2) + "%", bench::fmt(ir, 2) + "%", bench::fmt(hv, 4));
    }
  }
  table.print(std::cout);

  std::printf(
      "\nPaper (Table 2): Glimpse has the highest HV on every model\n"
      "(e.g. ResNet-18: Chameleon 3.19, DGP 3.64, Glimpse 4.40), because it\n"
      "cuts search time the most while matching or beating the others'\n"
      "inference latency. The same ordering should appear above.\n");
  return bench::finish();
}
