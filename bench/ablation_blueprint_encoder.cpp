// Ablation: PCA vs a neural autoencoder for the Blueprint embedding.
//
// The paper chooses PCA "over neural autoencoders as PCA provides an
// intuitive knob … [and] neural networks required more computation to
// achieve the same dimensionality reduction" (§3.1). This bench measures
// that design argument: reconstruction loss at equal embedding sizes, plus
// fitting cost and parameter count for the autoencoder side.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "glimpse/blueprint.hpp"
#include "ml/autoencoder.hpp"

using namespace glimpse;

namespace {
double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

int main() {
  std::printf("=== Ablation: Blueprint via PCA vs neural autoencoder ===\n");
  std::printf("(reconstruction RMSE in standardized units on the %zu-GPU "
              "datasheet population)\n\n",
              hwspec::gpu_database().size());

  linalg::Matrix features = hwspec::feature_matrix();
  Rng rng(bench::kBenchSeed);

  TextTable table({"dim", "PCA loss", "PCA fit (ms)", "AE loss", "AE fit (ms)",
                   "AE params"});
  for (std::size_t k : {2ul, 4ul, 8ul, 12ul, 16ul}) {
    double t0 = now_s();
    ml::Pca pca;
    pca.fit(features, k);
    double pca_ms = (now_s() - t0) * 1e3;
    double pca_loss = pca.reconstruction_rmse(features);

    double t1 = now_s();
    ml::Autoencoder ae(features, k, rng, {.hidden = 16, .epochs = 600});
    double ae_ms = (now_s() - t1) * 1e3;
    double ae_loss = ae.reconstruction_rmse(features);

    table.add(std::to_string(k), bench::fmt(pca_loss, 4), bench::fmt(pca_ms, 2),
              bench::fmt(ae_loss, 4), bench::fmt(ae_ms, 1),
              std::to_string(ae.num_params()));
  }
  table.print(std::cout);

  std::printf(
      "\nReading: the autoencoder's nonlinear compression wins at very small\n"
      "bottlenecks, but at the chosen operating size (dim 8+, <0.5%% variance\n"
      "loss) PCA matches or beats it at ~1000x less fitting compute, with a\n"
      "size knob that needs no retraining and no architecture search — the\n"
      "paper's stated reasons for choosing PCA for the Blueprint (3.1).\n");
  return bench::finish();
}
