// Figure 1: the optimal configuration does not transfer across GPU
// generations. Tune ResNet-18's 7th conv task on Titan Xp and RTX 2080 Ti,
// then run each GPU's optimum on the other and report the slowdown
// (paper: 27.79 % Titan Xp -> 2080 Ti, 31.33 % the other way; a transplanted
// config may even fail to launch, e.g. Turing's 64 KB shared-memory tiles
// exceed Pascal's 48 KB per-block limit).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "gpusim/perf_model.hpp"

using namespace glimpse;

namespace {

struct Tuned {
  searchspace::Config best;
  double gflops = 0.0;
};

Tuned tune(const bench::Method& method, const searchspace::Task& task,
           const hwspec::GpuSpec& hw) {
  tuning::SessionOptions opts;
  opts.max_trials = 360;
  opts.batch_size = 8;
  auto trace = bench::run_one(method, task, hw, opts);
  Tuned out;
  out.gflops = trace.best_gflops();
  for (const auto& t : trace.trials)
    if (t.result.valid && t.result.gflops == out.gflops) out.best = t.config;
  return out;
}

}  // namespace

int main() {
  std::printf("=== Figure 1: optimal configurations do not transfer across GPUs ===\n");
  std::printf("Task: ResNet-18 7th conv task (128x28x28 -> 256, 3x3, stride 2)\n\n");

  bench::Setup setup = bench::make_setup();
  bench::Pretrained pre = bench::pretrain(setup);

  const auto& resnet = setup.models[1];
  const auto& task = resnet.task(6);  // T07, 1-based
  const auto* xp = hwspec::find_gpu("Titan Xp");
  const auto* ti = hwspec::find_gpu("RTX 2080 Ti");

  auto method = bench::glimpse_method(pre);
  Tuned on_xp = tune(method, task, *xp);
  Tuned on_ti = tune(method, task, *ti);

  auto report = [&](const char* from, const char* to, const Tuned& src,
                    const Tuned& dst, const hwspec::GpuSpec& target) {
    auto e = gpusim::estimate(task, src.best, target);
    if (!e.valid) {
      std::printf("%s -> %s: transplanted optimum FAILS to launch (%s)\n", from, to,
                  gpusim::to_string(e.reason));
      return;
    }
    double slowdown = 1.0 - e.gflops / dst.gflops;
    std::printf("%s -> %s: %.0f GFLOPS vs native optimum %.0f GFLOPS "
                "(%.2f%% slowdown)\n",
                from, to, e.gflops, dst.gflops, slowdown * 100.0);
  };

  std::printf("Tuned optima: Titan Xp %.0f GFLOPS | RTX 2080 Ti %.0f GFLOPS\n\n",
              on_xp.gflops, on_ti.gflops);
  report("Titan Xp", "RTX 2080 Ti", on_xp, on_ti, *ti);
  report("RTX 2080 Ti", "Titan Xp", on_ti, on_xp, *xp);
  std::printf("\nPaper reports 27.79%% / 31.33%% slowdowns for the same transplant;\n"
              "the takeaway (optimal binaries are hardware-specific) holds.\n");
  return bench::finish();
}
